// Unit + property tests for maximal-clique enumeration and degeneracy
// ordering.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "hypergraph/clique.hpp"
#include "hypergraph/projected_graph.hpp"
#include "util/rng.hpp"

namespace marioh {
namespace {

ProjectedGraph CompleteGraph(size_t n) {
  ProjectedGraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.AddWeight(u, v, 1);
  }
  return g;
}

TEST(MaximalCliques, EmptyGraph) {
  ProjectedGraph g(5);
  EXPECT_TRUE(MaximalCliques(g).empty());
}

TEST(MaximalCliques, SingleEdge) {
  ProjectedGraph g(3);
  g.AddWeight(0, 2, 1);
  std::vector<NodeSet> cliques = MaximalCliques(g);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], (NodeSet{0, 2}));
}

TEST(MaximalCliques, CompleteGraphHasOneClique) {
  for (size_t n : {2, 3, 5, 8}) {
    ProjectedGraph g = CompleteGraph(n);
    std::vector<NodeSet> cliques = MaximalCliques(g);
    ASSERT_EQ(cliques.size(), 1u) << "n=" << n;
    EXPECT_EQ(cliques[0].size(), n);
  }
}

TEST(MaximalCliques, TrianglePlusPendant) {
  // Triangle {0,1,2} plus pendant edge {2,3}.
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 1);
  g.AddWeight(0, 2, 1);
  g.AddWeight(1, 2, 1);
  g.AddWeight(2, 3, 1);
  std::vector<NodeSet> cliques = MaximalCliques(g);
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_TRUE(std::find(cliques.begin(), cliques.end(),
                        NodeSet{0, 1, 2}) != cliques.end());
  EXPECT_TRUE(std::find(cliques.begin(), cliques.end(), NodeSet{2, 3}) !=
              cliques.end());
}

TEST(MaximalCliques, TwoTrianglesSharingAnEdge) {
  // {0,1,2} and {1,2,3} share edge (1,2); both are maximal.
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 1);
  g.AddWeight(0, 2, 1);
  g.AddWeight(1, 2, 1);
  g.AddWeight(1, 3, 1);
  g.AddWeight(2, 3, 1);
  std::vector<NodeSet> cliques = MaximalCliques(g);
  ASSERT_EQ(cliques.size(), 2u);
}

TEST(MaximalCliques, RespectsMaxCliqueCap) {
  ProjectedGraph g(8);
  // A matching of 4 disjoint edges = 4 maximal cliques.
  for (NodeId u = 0; u < 8; u += 2) g.AddWeight(u, u + 1, 1);
  CliqueOptions options;
  options.max_cliques = 2;
  EXPECT_EQ(MaximalCliques(g, options).size(), 2u);
}

TEST(MaximalCliques, TruncationIsReported) {
  ProjectedGraph g(8);
  for (NodeId u = 0; u < 8; u += 2) g.AddWeight(u, u + 1, 1);
  CliqueOptions options;
  options.max_cliques = 2;
  MaximalCliqueResult capped = EnumerateMaximalCliques(g, options);
  EXPECT_TRUE(capped.truncated);
  EXPECT_EQ(capped.cliques.size(), 2u);
  MaximalCliqueResult full = EnumerateMaximalCliques(g);
  EXPECT_FALSE(full.truncated);
  EXPECT_EQ(full.cliques.size(), 4u);
}

TEST(MaximalCliques, ExactCapIsNotTruncation) {
  ProjectedGraph g(4);
  for (NodeId u = 0; u < 4; u += 2) g.AddWeight(u, u + 1, 1);
  CliqueOptions options;
  options.max_cliques = 2;  // exactly the number of maximal cliques
  MaximalCliqueResult result = EnumerateMaximalCliques(g, options);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.cliques.size(), 2u);
}

TEST(MaximalCliques, MoonMoserGraph) {
  // Complete 3-partite graph K_{2,2,2} has 2^3 = 8 maximal cliques (one
  // node per part) — the classic worst-case family.
  ProjectedGraph g(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) {
      if (u / 2 != v / 2) g.AddWeight(u, v, 1);
    }
  }
  std::vector<NodeSet> cliques = MaximalCliques(g);
  EXPECT_EQ(cliques.size(), 8u);
  for (const NodeSet& q : cliques) EXPECT_EQ(q.size(), 3u);
}

TEST(DegeneracyOrdering, PathGraphHasDegeneracyOne) {
  ProjectedGraph g(5);
  for (NodeId u = 0; u + 1 < 5; ++u) g.AddWeight(u, u + 1, 1);
  size_t degeneracy = 99;
  std::vector<NodeId> order = DegeneracyOrdering(g, &degeneracy);
  EXPECT_EQ(order.size(), 5u);
  EXPECT_EQ(degeneracy, 1u);
  std::set<NodeId> distinct(order.begin(), order.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(DegeneracyOrdering, CompleteGraphDegeneracy) {
  ProjectedGraph g = CompleteGraph(6);
  size_t degeneracy = 0;
  DegeneracyOrdering(g, &degeneracy);
  EXPECT_EQ(degeneracy, 5u);
}

TEST(GreedyCliqueAround, FindsTriangle) {
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 1);
  g.AddWeight(0, 2, 1);
  g.AddWeight(1, 2, 1);
  NodeSet clique = GreedyCliqueAround(g, 0);
  EXPECT_EQ(clique, (NodeSet{0, 1, 2}));
}

TEST(GreedyCliqueAround, IsolatedNode) {
  ProjectedGraph g(3);
  EXPECT_EQ(GreedyCliqueAround(g, 1), (NodeSet{1}));
}

// Property test: on random graphs, every enumerated clique is (a) a clique
// and (b) maximal, and (c) every edge is inside at least one clique.
class MaximalCliquesProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaximalCliquesProperty, SoundCompleteMaximal) {
  util::Rng rng(GetParam());
  const size_t n = 24;
  ProjectedGraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(0.25)) g.AddWeight(u, v, 1 + rng.UniformInt(0, 3));
    }
  }
  std::vector<NodeSet> cliques = MaximalCliques(g);

  std::set<NodePair> covered;
  for (const NodeSet& q : cliques) {
    EXPECT_TRUE(g.IsClique(q));
    // Maximality: no node outside q is adjacent to every node of q.
    for (NodeId z = 0; z < n; ++z) {
      if (std::binary_search(q.begin(), q.end(), z)) continue;
      bool adjacent_all = true;
      for (NodeId u : q) {
        if (!g.HasEdge(u, z)) {
          adjacent_all = false;
          break;
        }
      }
      EXPECT_FALSE(adjacent_all)
          << "clique not maximal: node " << z << " extends it";
    }
    for (size_t i = 0; i < q.size(); ++i) {
      for (size_t j = i + 1; j < q.size(); ++j) {
        covered.insert(MakePair(q[i], q[j]));
      }
    }
  }
  // Completeness: every edge lies in some maximal clique.
  for (const auto& e : g.Edges()) {
    EXPECT_TRUE(covered.count(MakePair(e.u, e.v)) > 0);
  }
  // No duplicates.
  std::set<NodeSet> distinct(cliques.begin(), cliques.end());
  EXPECT_EQ(distinct.size(), cliques.size());
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MaximalCliquesProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace marioh
