// Unit + property tests for maximal-clique enumeration and degeneracy
// ordering.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "hypergraph/clique.hpp"
#include "hypergraph/projected_graph.hpp"
#include "util/rng.hpp"

namespace marioh {
namespace {

ProjectedGraph CompleteGraph(size_t n) {
  ProjectedGraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.AddWeight(u, v, 1);
  }
  return g;
}

/// Enumerates and copies out to owning sets — the ergonomic form for
/// assertions (production code consumes the arena views directly).
std::vector<NodeSet> MaximalCliqueSets(const ProjectedGraph& g,
                                       const CliqueOptions& options = {}) {
  return EnumerateMaximalCliques(g, options).cliques.ToNodeSets();
}

TEST(MaximalCliques, EmptyGraph) {
  ProjectedGraph g(5);
  EXPECT_TRUE(MaximalCliqueSets(g).empty());
}

TEST(MaximalCliques, SingleEdge) {
  ProjectedGraph g(3);
  g.AddWeight(0, 2, 1);
  std::vector<NodeSet> cliques = MaximalCliqueSets(g);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], (NodeSet{0, 2}));
}

TEST(MaximalCliques, CompleteGraphHasOneClique) {
  for (size_t n : {2, 3, 5, 8}) {
    ProjectedGraph g = CompleteGraph(n);
    std::vector<NodeSet> cliques = MaximalCliqueSets(g);
    ASSERT_EQ(cliques.size(), 1u) << "n=" << n;
    EXPECT_EQ(cliques[0].size(), n);
  }
}

TEST(MaximalCliques, TrianglePlusPendant) {
  // Triangle {0,1,2} plus pendant edge {2,3}.
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 1);
  g.AddWeight(0, 2, 1);
  g.AddWeight(1, 2, 1);
  g.AddWeight(2, 3, 1);
  std::vector<NodeSet> cliques = MaximalCliqueSets(g);
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_TRUE(std::find(cliques.begin(), cliques.end(),
                        NodeSet{0, 1, 2}) != cliques.end());
  EXPECT_TRUE(std::find(cliques.begin(), cliques.end(), NodeSet{2, 3}) !=
              cliques.end());
}

TEST(MaximalCliques, TwoTrianglesSharingAnEdge) {
  // {0,1,2} and {1,2,3} share edge (1,2); both are maximal.
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 1);
  g.AddWeight(0, 2, 1);
  g.AddWeight(1, 2, 1);
  g.AddWeight(1, 3, 1);
  g.AddWeight(2, 3, 1);
  std::vector<NodeSet> cliques = MaximalCliqueSets(g);
  ASSERT_EQ(cliques.size(), 2u);
}

TEST(MaximalCliques, RespectsMaxCliqueCap) {
  ProjectedGraph g(8);
  // A matching of 4 disjoint edges = 4 maximal cliques.
  for (NodeId u = 0; u < 8; u += 2) g.AddWeight(u, u + 1, 1);
  CliqueOptions options;
  options.max_cliques = 2;
  EXPECT_EQ(MaximalCliqueSets(g, options).size(), 2u);
}

TEST(MaximalCliques, TruncationIsReported) {
  ProjectedGraph g(8);
  for (NodeId u = 0; u < 8; u += 2) g.AddWeight(u, u + 1, 1);
  CliqueOptions options;
  options.max_cliques = 2;
  MaximalCliqueResult capped = EnumerateMaximalCliques(g, options);
  EXPECT_TRUE(capped.truncated);
  EXPECT_EQ(capped.cliques.size(), 2u);
  MaximalCliqueResult full = EnumerateMaximalCliques(g);
  EXPECT_FALSE(full.truncated);
  EXPECT_EQ(full.cliques.size(), 4u);
}

TEST(MaximalCliques, ExactCapIsNotTruncation) {
  ProjectedGraph g(4);
  for (NodeId u = 0; u < 4; u += 2) g.AddWeight(u, u + 1, 1);
  CliqueOptions options;
  options.max_cliques = 2;  // exactly the number of maximal cliques
  MaximalCliqueResult result = EnumerateMaximalCliques(g, options);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.cliques.size(), 2u);
}

TEST(MaximalCliques, MoonMoserGraph) {
  // Complete 3-partite graph K_{2,2,2} has 2^3 = 8 maximal cliques (one
  // node per part) — the classic worst-case family.
  ProjectedGraph g(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) {
      if (u / 2 != v / 2) g.AddWeight(u, v, 1);
    }
  }
  std::vector<NodeSet> cliques = MaximalCliqueSets(g);
  EXPECT_EQ(cliques.size(), 8u);
  for (const NodeSet& q : cliques) EXPECT_EQ(q.size(), 3u);
}

TEST(CliqueStore, RoundTripPreservesCliques) {
  CliqueStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.total_nodes(), 0u);
  EXPECT_TRUE(store.ToNodeSets().empty());

  std::vector<NodeSet> cliques = {{1, 4, 7}, {0, 2}, {3, 5, 6, 8}, {0, 9}};
  for (const NodeSet& q : cliques) store.PushClique(q);
  ASSERT_EQ(store.size(), cliques.size());
  EXPECT_EQ(store.total_nodes(), 11u);
  for (size_t i = 0; i < cliques.size(); ++i) {
    CliqueView v = store[i];
    EXPECT_EQ(NodeSet(v.begin(), v.end()), cliques[i]);
    EXPECT_EQ(store.Materialize(i), cliques[i]);
  }
  EXPECT_EQ(store.ToNodeSets(), cliques);

  // Range-for iteration visits every clique in order.
  size_t index = 0;
  for (CliqueView v : store) {
    EXPECT_EQ(store.Materialize(index), NodeSet(v.begin(), v.end()));
    ++index;
  }
  EXPECT_EQ(index, cliques.size());
}

TEST(CliqueStore, AppendSortAndEquality) {
  CliqueStore a, b;
  a.PushClique(NodeSet{2, 3});
  a.PushClique(NodeSet{0, 1, 5});
  b.PushClique(NodeSet{0, 4});
  CliqueStore merged;
  merged.Append(a);
  merged.Append(b);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged.Materialize(2), (NodeSet{0, 4}));

  // Sort produces the order std::sort gives the NodeSet representation.
  std::vector<NodeSet> expected = merged.ToNodeSets();
  std::sort(expected.begin(), expected.end());
  merged.Sort();
  EXPECT_EQ(merged.ToNodeSets(), expected);

  CliqueStore same;
  for (const NodeSet& q : expected) same.PushClique(q);
  EXPECT_TRUE(merged == same);
  same.PushClique(NodeSet{7, 8});
  EXPECT_FALSE(merged == same);
  // Same flat node buffer, different clique boundaries: not equal.
  CliqueStore split_differently;
  split_differently.PushClique(NodeSet{0, 1});
  split_differently.PushClique(NodeSet{2});
  CliqueStore joined;
  joined.PushClique(NodeSet{0, 1, 2});
  joined.PushClique(NodeSet{});
  EXPECT_FALSE(split_differently == joined);

  merged.Clear();
  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(merged.total_nodes(), 0u);
}

TEST(CliqueStore, ArenaMatchesHashMapReferenceOnRandomGraphs) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    util::Rng rng(seed);
    const size_t n = 32;
    ProjectedGraph g(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (rng.Bernoulli(0.3)) g.AddWeight(u, v, 1);
      }
    }
    MaximalCliqueResult result = EnumerateMaximalCliques(g);
    EXPECT_FALSE(result.truncated);
    EXPECT_EQ(result.cliques.ToNodeSets(), MaximalCliquesHashMapReference(g))
        << "seed=" << seed;
  }
}

TEST(DegeneracyOrdering, PathGraphHasDegeneracyOne) {
  ProjectedGraph g(5);
  for (NodeId u = 0; u + 1 < 5; ++u) g.AddWeight(u, u + 1, 1);
  size_t degeneracy = 99;
  std::vector<NodeId> order = DegeneracyOrdering(g, &degeneracy);
  EXPECT_EQ(order.size(), 5u);
  EXPECT_EQ(degeneracy, 1u);
  std::set<NodeId> distinct(order.begin(), order.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(DegeneracyOrdering, CompleteGraphDegeneracy) {
  ProjectedGraph g = CompleteGraph(6);
  size_t degeneracy = 0;
  DegeneracyOrdering(g, &degeneracy);
  EXPECT_EQ(degeneracy, 5u);
}

TEST(GreedyCliqueAround, FindsTriangle) {
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 1);
  g.AddWeight(0, 2, 1);
  g.AddWeight(1, 2, 1);
  NodeSet clique = GreedyCliqueAround(g, 0);
  EXPECT_EQ(clique, (NodeSet{0, 1, 2}));
}

TEST(GreedyCliqueAround, IsolatedNode) {
  ProjectedGraph g(3);
  EXPECT_EQ(GreedyCliqueAround(g, 1), (NodeSet{1}));
}

// Property test: on random graphs, every enumerated clique is (a) a clique
// and (b) maximal, and (c) every edge is inside at least one clique.
class MaximalCliquesProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaximalCliquesProperty, SoundCompleteMaximal) {
  util::Rng rng(GetParam());
  const size_t n = 24;
  ProjectedGraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(0.25)) g.AddWeight(u, v, 1 + rng.UniformInt(0, 3));
    }
  }
  std::vector<NodeSet> cliques = MaximalCliqueSets(g);

  std::set<NodePair> covered;
  for (const NodeSet& q : cliques) {
    EXPECT_TRUE(g.IsClique(q));
    // Maximality: no node outside q is adjacent to every node of q.
    for (NodeId z = 0; z < n; ++z) {
      if (std::binary_search(q.begin(), q.end(), z)) continue;
      bool adjacent_all = true;
      for (NodeId u : q) {
        if (!g.HasEdge(u, z)) {
          adjacent_all = false;
          break;
        }
      }
      EXPECT_FALSE(adjacent_all)
          << "clique not maximal: node " << z << " extends it";
    }
    for (size_t i = 0; i < q.size(); ++i) {
      for (size_t j = i + 1; j < q.size(); ++j) {
        covered.insert(MakePair(q[i], q[j]));
      }
    }
  }
  // Completeness: every edge lies in some maximal clique.
  for (const auto& e : g.Edges()) {
    EXPECT_TRUE(covered.count(MakePair(e.u, e.v)) > 0);
  }
  // No duplicates.
  std::set<NodeSet> distinct(cliques.begin(), cliques.end());
  EXPECT_EQ(distinct.size(), cliques.size());
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, MaximalCliquesProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace marioh
