// Unit tests for the hypergraph substrate: Hypergraph multiset semantics,
// clique expansion, and the mutable ProjectedGraph (incl. MHH, Eq. (1)).

#include <gtest/gtest.h>

#include "hypergraph/hypergraph.hpp"
#include "hypergraph/projected_graph.hpp"
#include "hypergraph/types.hpp"

namespace marioh {
namespace {

TEST(Types, CanonicalizeSortsAndDedups) {
  NodeSet s{3, 1, 2, 3, 1};
  Canonicalize(&s);
  EXPECT_EQ(s, (NodeSet{1, 2, 3}));
}

TEST(Types, MakePairOrdersEndpoints) {
  EXPECT_EQ(MakePair(5, 2), (NodePair{2, 5}));
  EXPECT_EQ(MakePair(2, 5), (NodePair{2, 5}));
}

TEST(Hypergraph, AddEdgeCanonicalizesAndCounts) {
  Hypergraph h;
  h.AddEdge({2, 1, 3});
  h.AddEdge({3, 2, 1});  // same hyperedge, different order
  EXPECT_EQ(h.num_unique_edges(), 1u);
  EXPECT_EQ(h.num_total_edges(), 2u);
  EXPECT_EQ(h.Multiplicity({1, 2, 3}), 2u);
  EXPECT_EQ(h.num_nodes(), 4u);  // max id 3 -> 4 nodes
}

TEST(Hypergraph, RejectsDegenerateEdges) {
  Hypergraph h;
  h.AddEdge({5});
  h.AddEdge({7, 7});  // collapses to single node
  h.AddEdge({});
  EXPECT_EQ(h.num_unique_edges(), 0u);
  EXPECT_EQ(h.num_total_edges(), 0u);
}

TEST(Hypergraph, RemoveEdgeDecrementsAndErases) {
  Hypergraph h;
  h.AddEdge({0, 1}, 3);
  EXPECT_EQ(h.RemoveEdge({0, 1}, 2), 2u);
  EXPECT_EQ(h.Multiplicity({0, 1}), 1u);
  EXPECT_EQ(h.RemoveEdge({0, 1}, 5), 1u);  // clamps
  EXPECT_FALSE(h.Contains({0, 1}));
  EXPECT_EQ(h.RemoveEdge({0, 1}), 0u);  // absent
}

TEST(Hypergraph, MultiplicityReducedKeepsUniqueEdges) {
  Hypergraph h;
  h.AddEdge({0, 1}, 5);
  h.AddEdge({1, 2, 3}, 2);
  Hypergraph reduced = h.MultiplicityReduced();
  EXPECT_EQ(reduced.num_unique_edges(), 2u);
  EXPECT_EQ(reduced.num_total_edges(), 2u);
  EXPECT_EQ(reduced.Multiplicity({0, 1}), 1u);
}

TEST(Hypergraph, ProjectionWeightsCountCoOccurrences) {
  // Two hyperedges {0,1,2} (x2) and {1,2}: w(1,2) = 3, w(0,1) = 2.
  Hypergraph h;
  h.AddEdge({0, 1, 2}, 2);
  h.AddEdge({1, 2}, 1);
  ProjectedGraph g = h.Project();
  EXPECT_EQ(g.Weight(1, 2), 3u);
  EXPECT_EQ(g.Weight(0, 1), 2u);
  EXPECT_EQ(g.Weight(0, 2), 2u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Hypergraph, AveragesMatchTableIDefinitions) {
  Hypergraph h;
  h.AddEdge({0, 1}, 1);
  h.AddEdge({0, 1, 2}, 3);
  // Avg multiplicity = total / unique = 4 / 2 = 2.
  EXPECT_DOUBLE_EQ(h.AverageMultiplicity(), 2.0);
  // Avg size over multiset = (2 + 3*3) / 4 = 2.75.
  EXPECT_DOUBLE_EQ(h.AverageEdgeSize(), 2.75);
}

TEST(Hypergraph, NodeDegreesCountMultiplicity) {
  Hypergraph h;
  h.AddEdge({0, 1}, 2);
  h.AddEdge({1, 2}, 1);
  std::vector<uint32_t> deg = h.NodeDegrees();
  EXPECT_EQ(deg[0], 2u);
  EXPECT_EQ(deg[1], 3u);
  EXPECT_EQ(deg[2], 1u);
}

TEST(Hypergraph, ExpandedEdgesRepeats) {
  Hypergraph h;
  h.AddEdge({0, 1}, 2);
  h.AddEdge({0, 2}, 1);
  std::vector<NodeSet> expanded = h.ExpandedEdges();
  EXPECT_EQ(expanded.size(), 3u);
}

TEST(Hypergraph, EmptyProperties) {
  Hypergraph h;
  EXPECT_DOUBLE_EQ(h.AverageMultiplicity(), 0.0);
  EXPECT_DOUBLE_EQ(h.AverageEdgeSize(), 0.0);
  EXPECT_TRUE(h.UniqueEdges().empty());
}

TEST(ProjectedGraph, AddAndSubtractWeight) {
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 3);
  EXPECT_EQ(g.Weight(0, 1), 3u);
  EXPECT_EQ(g.Weight(1, 0), 3u);  // symmetric
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.SubtractWeight(0, 1, 2), 2u);
  EXPECT_EQ(g.Weight(0, 1), 1u);
  EXPECT_EQ(g.SubtractWeight(0, 1, 5), 1u);  // clamps to removal
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.Empty());
}

TEST(ProjectedGraph, SelfAndMissingWeightIsZero) {
  ProjectedGraph g(3);
  g.AddWeight(0, 1, 1);
  EXPECT_EQ(g.Weight(0, 0), 0u);
  EXPECT_EQ(g.Weight(1, 2), 0u);
}

TEST(ProjectedGraph, DegreesAndEdges) {
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 1);
  g.AddWeight(0, 2, 5);
  g.AddWeight(0, 3, 2);
  EXPECT_EQ(g.Degree(0), 3u);
  EXPECT_EQ(g.WeightedDegree(0), 8u);
  EXPECT_EQ(g.MaxDegree(), 3u);
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].u, 0u);
  EXPECT_EQ(edges[0].v, 1u);
  EXPECT_DOUBLE_EQ(g.AverageWeight(), 8.0 / 3.0);
  EXPECT_EQ(g.TotalWeight(), 8u);
}

TEST(ProjectedGraph, IsCliqueChecksAllPairs) {
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 1);
  g.AddWeight(1, 2, 1);
  g.AddWeight(0, 2, 1);
  EXPECT_TRUE(g.IsClique(NodeSet{0, 1, 2}));
  EXPECT_FALSE(g.IsClique(NodeSet{0, 1, 3}));
  EXPECT_TRUE(g.IsClique(NodeSet{0}));   // trivially
  EXPECT_TRUE(g.IsClique(NodeSet{}));
}

TEST(ProjectedGraph, MhhMatchesEquationOne) {
  // Triangle 0-1-2 with weights w(0,2)=2, w(1,2)=3 plus common neighbor 3
  // with w(0,3)=1, w(1,3)=4. MHH(0,1) = min(2,3) + min(1,4) = 3.
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 5);
  g.AddWeight(0, 2, 2);
  g.AddWeight(1, 2, 3);
  g.AddWeight(0, 3, 1);
  g.AddWeight(1, 3, 4);
  EXPECT_EQ(g.Mhh(0, 1), 3u);
  // MHH is defined for any node pair: 2 and 3 share neighbors 0 and 1, so
  // MHH(2,3) = min(2,1) + min(3,4) = 4, even though (2,3) is a non-edge.
  EXPECT_EQ(g.Mhh(2, 3), 4u);
  // A pair with no common neighbors has MHH 0.
  ProjectedGraph path(3);
  path.AddWeight(0, 1, 2);
  path.AddWeight(1, 2, 2);
  EXPECT_EQ(path.Mhh(0, 1), 0u);
}

TEST(ProjectedGraph, CommonNeighborsExcludesEndpoints) {
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 1);
  g.AddWeight(0, 2, 1);
  g.AddWeight(1, 2, 1);
  g.AddWeight(1, 3, 1);
  std::vector<NodeId> common = g.CommonNeighbors(0, 1);
  ASSERT_EQ(common.size(), 1u);
  EXPECT_EQ(common[0], 2u);
}

TEST(ProjectedGraph, PeelCliqueDecrementsEveryEdge) {
  ProjectedGraph g(3);
  g.AddWeight(0, 1, 2);
  g.AddWeight(0, 2, 1);
  g.AddWeight(1, 2, 1);
  g.PeelClique(NodeSet{0, 1, 2});
  EXPECT_EQ(g.Weight(0, 1), 1u);
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(ProjectedGraph, ProjectionRoundTripOnCliqueHypergraph) {
  // A hypergraph of one size-4 hyperedge projects to a K4 with weight 1.
  Hypergraph h;
  h.AddEdge({0, 1, 2, 3}, 1);
  ProjectedGraph g = h.Project();
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_TRUE(g.IsClique(NodeSet{0, 1, 2, 3}));
  for (const auto& e : g.Edges()) EXPECT_EQ(e.weight, 1u);
}

}  // namespace
}  // namespace marioh
