// Tests for all baseline reconstruction methods: interface contracts,
// behavior on canonical small graphs, and cover/decomposition invariants.

#include <gtest/gtest.h>

#include <unordered_set>

#include "baselines/bayesian_mdl.hpp"
#include "baselines/cfinder.hpp"
#include "baselines/clique_covering.hpp"
#include "baselines/demon.hpp"
#include "baselines/maxclique.hpp"
#include "baselines/shyre.hpp"
#include "baselines/shyre_unsup.hpp"
#include "eval/metrics.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace marioh::baselines {
namespace {

ProjectedGraph TwoDisjointTriangles() {
  ProjectedGraph g(6);
  g.AddWeight(0, 1, 1);
  g.AddWeight(0, 2, 1);
  g.AddWeight(1, 2, 1);
  g.AddWeight(3, 4, 1);
  g.AddWeight(3, 5, 1);
  g.AddWeight(4, 5, 1);
  return g;
}

/// Every projected edge of `g` is covered by some hyperedge of `h`.
bool CoversAllEdges(const ProjectedGraph& g, const Hypergraph& h) {
  std::unordered_set<NodePair, util::PairHash> covered;
  for (const auto& [e, m] : h.edges()) {
    (void)m;
    for (size_t i = 0; i < e.size(); ++i) {
      for (size_t j = i + 1; j < e.size(); ++j) {
        covered.insert(MakePair(e[i], e[j]));
      }
    }
  }
  for (const auto& e : g.Edges()) {
    if (covered.count(MakePair(e.u, e.v)) == 0) return false;
  }
  return true;
}

TEST(MaxClique, RecoversDisjointTriangles) {
  ProjectedGraph g = TwoDisjointTriangles();
  MaxCliqueDecomposition method;
  Hypergraph h = method.Reconstruct(g);
  EXPECT_EQ(h.num_unique_edges(), 2u);
  EXPECT_TRUE(h.Contains({0, 1, 2}));
  EXPECT_TRUE(h.Contains({3, 4, 5}));
}

TEST(MaxClique, OutputsAreCliquesOfInput) {
  util::Rng rng(3);
  ProjectedGraph g(20);
  for (NodeId u = 0; u < 20; ++u) {
    for (NodeId v = u + 1; v < 20; ++v) {
      if (rng.Bernoulli(0.3)) g.AddWeight(u, v, 1);
    }
  }
  MaxCliqueDecomposition method;
  Hypergraph h = method.Reconstruct(g);
  for (const auto& [e, m] : h.edges()) {
    (void)m;
    EXPECT_TRUE(g.IsClique(e));
  }
  EXPECT_TRUE(CoversAllEdges(g, h));
}

TEST(CliqueCovering, CoversEveryEdge) {
  util::Rng rng(5);
  ProjectedGraph g(25);
  for (NodeId u = 0; u < 25; ++u) {
    for (NodeId v = u + 1; v < 25; ++v) {
      if (rng.Bernoulli(0.2)) g.AddWeight(u, v, 1);
    }
  }
  CliqueCovering method(7);
  Hypergraph h = method.Reconstruct(g);
  EXPECT_TRUE(CoversAllEdges(g, h));
  for (const auto& [e, m] : h.edges()) {
    (void)m;
    EXPECT_TRUE(g.IsClique(e));
  }
}

TEST(CliqueCovering, SingleEdgeGraph) {
  ProjectedGraph g(2);
  g.AddWeight(0, 1, 5);
  CliqueCovering method;
  Hypergraph h = method.Reconstruct(g);
  EXPECT_EQ(h.num_unique_edges(), 1u);
  EXPECT_TRUE(h.Contains({0, 1}));
}

TEST(BayesianMdl, CoverIsValidAndParsimonious) {
  ProjectedGraph g = TwoDisjointTriangles();
  BayesianMdl method(11);
  Hypergraph h = method.Reconstruct(g);
  EXPECT_TRUE(CoversAllEdges(g, h));
  // Parsimony: two triangles explain the graph with 2 hyperedges; a cover
  // with more than 6 (one per edge) would be degenerate.
  EXPECT_LE(h.num_unique_edges(), 6u);
  EXPECT_GE(h.num_unique_edges(), 2u);
}

TEST(BayesianMdl, EmptyGraph) {
  ProjectedGraph g(4);
  BayesianMdl method;
  Hypergraph h = method.Reconstruct(g);
  EXPECT_EQ(h.num_total_edges(), 0u);
}

TEST(Demon, FindsCommunitiesInDisjointTriangles) {
  ProjectedGraph g = TwoDisjointTriangles();
  Demon method(1.0, 2, 13);
  Hypergraph h = method.Reconstruct(g);
  EXPECT_GT(h.num_unique_edges(), 0u);
  // Both triangles should be found as (contained in) communities.
  bool found_left = false, found_right = false;
  for (const auto& [e, m] : h.edges()) {
    (void)m;
    if (e == NodeSet{0, 1, 2}) found_left = true;
    if (e == NodeSet{3, 4, 5}) found_right = true;
  }
  EXPECT_TRUE(found_left);
  EXPECT_TRUE(found_right);
}

TEST(Demon, MinSizeRespected) {
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 1);
  Demon method(1.0, 3, 17);
  Hypergraph h = method.Reconstruct(g);
  for (const auto& [e, m] : h.edges()) {
    (void)m;
    EXPECT_GE(e.size(), 3u);
  }
}

TEST(CFinder, PercolatesAdjacentTriangles) {
  // Two triangles sharing an edge percolate (k=3) into one community of 4.
  ProjectedGraph g(4);
  g.AddWeight(0, 1, 1);
  g.AddWeight(0, 2, 1);
  g.AddWeight(1, 2, 1);
  g.AddWeight(1, 3, 1);
  g.AddWeight(2, 3, 1);
  CFinder method(3);
  Hypergraph h = method.Reconstruct(g);
  EXPECT_TRUE(h.Contains({0, 1, 2, 3}));
}

TEST(CFinder, DisjointTrianglesStaySeparate) {
  ProjectedGraph g = TwoDisjointTriangles();
  CFinder method(3);
  Hypergraph h = method.Reconstruct(g);
  EXPECT_TRUE(h.Contains({0, 1, 2}));
  EXPECT_TRUE(h.Contains({3, 4, 5}));
  EXPECT_EQ(h.num_unique_edges(), 2u);
}

TEST(CFinder, TrainPicksKFromSizeQuantiles) {
  Hypergraph source;
  for (NodeId base = 0; base < 40; base += 4) {
    source.AddEdge({base, base + 1, base + 2, base + 3}, 1);
  }
  CFinder method(3);
  method.Train(source.Project(), source);
  EXPECT_EQ(method.k(), 4u);  // all hyperedges have size 4
}

TEST(ShyreUnsup, PeelsRepeatedPairExactly) {
  Hypergraph truth;
  truth.AddEdge({0, 1}, 3);
  ProjectedGraph g = truth.Project();
  ShyreUnsup method;
  Hypergraph h = method.Reconstruct(g);
  EXPECT_EQ(h.Multiplicity({0, 1}), 3u);
}

TEST(ShyreUnsup, ConsumesAllEdgeMultiplicity) {
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName("hosts"), 3);
  ProjectedGraph g = data.hypergraph.Project();
  ShyreUnsup method;
  Hypergraph h = method.Reconstruct(g);
  EXPECT_EQ(h.Project().TotalWeight(), g.TotalWeight());
}

TEST(ShyreUnsup, PrefersLargerCliques) {
  // One triangle, weight 1: should be taken as one size-3 hyperedge, not
  // three pairs.
  Hypergraph truth;
  truth.AddEdge({0, 1, 2}, 1);
  ProjectedGraph g = truth.Project();
  ShyreUnsup method;
  Hypergraph h = method.Reconstruct(g);
  EXPECT_TRUE(h.Contains({0, 1, 2}));
  EXPECT_EQ(h.num_total_edges(), 1u);
}

TEST(Shyre, TrainAndReconstructRunsEndToEnd) {
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName("crime"), 7);
  util::Rng rng(8);
  gen::SourceTargetSplit split =
      gen::SplitHypergraph(data.hypergraph.MultiplicityReduced(), &rng, 0.5);
  Shyre::Options options;
  options.seed = 9;
  Shyre method(options);
  EXPECT_EQ(method.Name(), "SHyRe-Count");
  method.Train(split.source.Project(), split.source);
  Hypergraph h = method.Reconstruct(split.target.Project());
  // SHyRe is single-pass: accuracy is dataset-dependent, but on the
  // near-disjoint crime profile it must recover a solid majority.
  EXPECT_GT(eval::Jaccard(split.target, h), 0.5);
}

TEST(Shyre, MotifVariantHasDistinctName) {
  Shyre::Options options;
  options.features = ShyreFeatures::kMotif;
  Shyre method(options);
  EXPECT_EQ(method.Name(), "SHyRe-Motif");
}

TEST(AllMethods, NamesAreStable) {
  EXPECT_EQ(MaxCliqueDecomposition().Name(), "MaxClique");
  EXPECT_EQ(CliqueCovering().Name(), "CliqueCovering");
  EXPECT_EQ(BayesianMdl().Name(), "Bayesian-MDL");
  EXPECT_EQ(Demon().Name(), "Demon");
  EXPECT_EQ(CFinder().Name(), "CFinder");
  EXPECT_EQ(ShyreUnsup().Name(), "SHyRe-Unsup");
}

TEST(AllMethods, UnsupervisedOnesIgnoreTrain) {
  EXPECT_FALSE(MaxCliqueDecomposition().IsSupervised());
  EXPECT_FALSE(CliqueCovering().IsSupervised());
  EXPECT_FALSE(BayesianMdl().IsSupervised());
  EXPECT_FALSE(Demon().IsSupervised());
  EXPECT_FALSE(ShyreUnsup().IsSupervised());
  EXPECT_TRUE(CFinder().IsSupervised());
  EXPECT_TRUE(Shyre().IsSupervised());
}

}  // namespace
}  // namespace marioh::baselines
