// Unit tests for src/util: RNG determinism, aggregation, running stats,
// KS statistic, normalized difference, hashing, table rendering, timers.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace marioh::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformIndex(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(5);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> sample = rng.SampleWithoutReplacement(items, 4);
    std::set<int> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), 4u);
    for (int x : sample) {
      EXPECT_TRUE(std::find(items.begin(), items.end(), x) != items.end());
    }
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(9);
  std::vector<int> items{1, 2, 3};
  std::vector<int> sample = rng.SampleWithoutReplacement(items, 3);
  std::set<int> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct, (std::set<int>{1, 2, 3}));
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(13);
  std::vector<int> items{1, 2, 2, 3, 5, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, DiscreteRespectsZeroWeights) {
  Rng rng(17);
  std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.Discrete(weights), 1u);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  // The fork must be deterministic too.
  Rng b(21);
  Rng child2 = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(child.UniformInt(0, 1 << 20), child2.UniformInt(0, 1 << 20));
  }
}

TEST(Aggregate5, EmptyGivesZeros) {
  EXPECT_EQ(Aggregate5({}), (std::vector<double>{0, 0, 0, 0, 0}));
}

TEST(Aggregate5, SingleValue) {
  std::vector<double> agg = Aggregate5({4.0});
  EXPECT_DOUBLE_EQ(agg[0], 4.0);  // sum
  EXPECT_DOUBLE_EQ(agg[1], 4.0);  // mean
  EXPECT_DOUBLE_EQ(agg[2], 4.0);  // min
  EXPECT_DOUBLE_EQ(agg[3], 4.0);  // max
  EXPECT_DOUBLE_EQ(agg[4], 0.0);  // std
}

TEST(Aggregate5, KnownValues) {
  std::vector<double> agg = Aggregate5({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(agg[0], 10.0);
  EXPECT_DOUBLE_EQ(agg[1], 2.5);
  EXPECT_DOUBLE_EQ(agg[2], 1.0);
  EXPECT_DOUBLE_EQ(agg[3], 4.0);
  EXPECT_NEAR(agg[4], std::sqrt(1.25), 1e-12);
}

TEST(RunningStats, MeanAndStd) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_NEAR(stats.Std(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_DOUBLE_EQ(stats.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Std(), 0.0);
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Std(), 0.0);
}

TEST(KsStatistic, IdenticalSamplesGiveZero) {
  std::vector<double> a{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(KsStatistic(a, a), 0.0);
}

TEST(KsStatistic, DisjointSamplesGiveOne) {
  EXPECT_DOUBLE_EQ(KsStatistic({1, 2, 3}, {10, 11, 12}), 1.0);
}

TEST(KsStatistic, EmptyHandling) {
  EXPECT_DOUBLE_EQ(KsStatistic({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(KsStatistic({1.0}, {}), 1.0);
}

TEST(KsStatistic, HalfShiftedSample) {
  // {1,2} vs {2,3}: max CDF gap is 0.5.
  EXPECT_NEAR(KsStatistic({1, 2}, {2, 3}), 0.5, 1e-12);
}

TEST(NormalizedDifference, Basics) {
  EXPECT_DOUBLE_EQ(NormalizedDifference(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedDifference(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedDifference(5, 10), 0.5);
  EXPECT_DOUBLE_EQ(NormalizedDifference(10, 5), 0.5);
  EXPECT_DOUBLE_EQ(NormalizedDifference(0, 4), 1.0);
}

TEST(VectorHash, EqualVectorsEqualHashes) {
  VectorHash h;
  std::vector<uint32_t> a{1, 2, 3};
  std::vector<uint32_t> b{1, 2, 3};
  EXPECT_EQ(h(a), h(b));
}

TEST(VectorHash, OrderSensitive) {
  VectorHash h;
  EXPECT_NE(h({1, 2, 3}), h({3, 2, 1}));
}

TEST(PairHash, Distinguishes) {
  PairHash h;
  EXPECT_NE(h({1, 2}), h({2, 1}));
  EXPECT_EQ(h({1, 2}), h({1, 2}));
}

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table("Demo");
  table.SetHeader({"a", "bb"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  std::string out = table.Render();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
}

TEST(TextTable, Formatting) {
  EXPECT_EQ(TextTable::MeanStd(1.234, 0.567), "1.23±0.57");
  EXPECT_EQ(TextTable::Num(3.14159, 3), "3.142");
}

TEST(StageTimer, AccumulatesStages) {
  StageTimer timer;
  timer.Add("a", 1.5);
  timer.Add("a", 0.5);
  timer.Add("b", 1.0);
  EXPECT_DOUBLE_EQ(timer.Get("a"), 2.0);
  EXPECT_DOUBLE_EQ(timer.Get("b"), 1.0);
  EXPECT_DOUBLE_EQ(timer.Get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(timer.Total(), 3.0);
  timer.Clear();
  EXPECT_DOUBLE_EQ(timer.Total(), 0.0);
}

TEST(ScopedStage, RecordsNonNegativeTime) {
  StageTimer timer;
  {
    ScopedStage stage(&timer, "scope");
  }
  EXPECT_GE(timer.Get("scope"), 0.0);
}

}  // namespace
}  // namespace marioh::util
