// Randomized cross-module consistency properties, run over many seeds:
// identities that must hold for every hypergraph (projection weight
// accounting, metric identities, structural-scalar identities, degeneracy
// ordering soundness, split/recombine round trips).

#include <gtest/gtest.h>

#include <numeric>

#include "eval/metrics.hpp"
#include "eval/structural.hpp"
#include "gen/hypercl.hpp"
#include "gen/split.hpp"
#include "hypergraph/clique.hpp"
#include "util/rng.hpp"

namespace marioh {
namespace {

class RandomHypergraph : public ::testing::TestWithParam<uint64_t> {
 protected:
  Hypergraph Make() {
    util::Rng rng(GetParam() * 7919 + 13);
    Hypergraph h = gen::HyperClLike(50, 90, 3.0, 0.7, &rng);
    // Sprinkle multiplicities.
    for (const NodeSet& e : h.UniqueEdges()) {
      if (rng.Bernoulli(0.3)) {
        h.AddEdge(e, static_cast<uint32_t>(rng.UniformInt(1, 3)));
      }
    }
    return h;
  }
};

TEST_P(RandomHypergraph, ProjectionWeightAccounting) {
  // Total projected weight equals sum over hyperedges of m * C(|e|, 2).
  Hypergraph h = Make();
  uint64_t expected = 0;
  for (const auto& [e, m] : h.edges()) {
    expected += static_cast<uint64_t>(e.size() * (e.size() - 1) / 2) * m;
  }
  EXPECT_EQ(h.Project().TotalWeight(), expected);
}

TEST_P(RandomHypergraph, SelfSimilarityIdentities) {
  Hypergraph h = Make();
  EXPECT_DOUBLE_EQ(eval::Jaccard(h, h), 1.0);
  EXPECT_DOUBLE_EQ(eval::MultiJaccard(h, h), 1.0);
  EXPECT_DOUBLE_EQ(eval::Precision(h, h), 1.0);
  EXPECT_DOUBLE_EQ(eval::Recall(h, h), 1.0);
  // Multiplicity reduction never changes plain Jaccard.
  EXPECT_DOUBLE_EQ(eval::Jaccard(h, h.MultiplicityReduced()), 1.0);
}

TEST_P(RandomHypergraph, MultiJaccardUpperBoundsByJaccardStructure) {
  // For any pair, multi-Jaccard <= 1 and hits 1 only on equality.
  util::Rng rng(GetParam());
  Hypergraph a = Make();
  Hypergraph b = a;
  // Perturb b.
  std::vector<NodeSet> edges = a.UniqueEdges();
  const NodeSet& victim = edges[rng.UniformIndex(edges.size())];
  b.RemoveEdge(victim, 1);
  double mj = eval::MultiJaccard(a, b);
  EXPECT_LT(mj, 1.0);
  EXPECT_GE(mj, 0.0);
}

TEST_P(RandomHypergraph, StructuralScalarIdentities) {
  // By definition: overlapness == average node degree (both equal
  // sum(|e| * m) / covered nodes) and density == unique edges / covered.
  Hypergraph h = Make();
  eval::ScalarProperties p = eval::ComputeScalars(h, GetParam());
  EXPECT_NEAR(p.overlapness, p.avg_node_degree, 1e-9);
  EXPECT_NEAR(p.density * p.num_nodes,
              static_cast<double>(h.num_unique_edges()), 1e-6);
  EXPECT_GE(p.simplicial_closure, 0.0);
  EXPECT_LE(p.simplicial_closure, 1.0);
}

TEST_P(RandomHypergraph, SplitRecombineIsIdentity) {
  Hypergraph h = Make();
  util::Rng rng(GetParam() ^ 0xabcULL);
  gen::SourceTargetSplit split = gen::SplitHypergraph(h, &rng, 0.5);
  Hypergraph recombined(h.num_nodes());
  for (const auto& [e, m] : split.source.edges()) recombined.AddEdge(e, m);
  for (const auto& [e, m] : split.target.edges()) recombined.AddEdge(e, m);
  EXPECT_DOUBLE_EQ(eval::MultiJaccard(h, recombined), 1.0);
}

TEST_P(RandomHypergraph, DegeneracyOrderingIsSound) {
  // In a degeneracy ordering, every node has at most `degeneracy`
  // neighbors that come later in the order.
  ProjectedGraph g = Make().Project();
  size_t degeneracy = 0;
  std::vector<NodeId> order = DegeneracyOrdering(g, &degeneracy);
  std::vector<size_t> pos(g.num_nodes());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    size_t later = 0;
    for (const auto& [v, w] : g.Neighbors(u)) {
      (void)w;
      if (pos[v] > pos[u]) ++later;
    }
    EXPECT_LE(later, degeneracy) << "node " << u;
  }
}

TEST_P(RandomHypergraph, MaximalCliqueOfProjectionContainsEveryHyperedge) {
  // Every hyperedge is a clique of the projection, hence contained in at
  // least one maximal clique.
  Hypergraph h = Make();
  ProjectedGraph g = h.Project();
  std::vector<NodeSet> cliques = EnumerateMaximalCliques(g).cliques.ToNodeSets();
  for (const auto& [e, m] : h.edges()) {
    (void)m;
    bool contained = false;
    for (const NodeSet& q : cliques) {
      if (std::includes(q.begin(), q.end(), e.begin(), e.end())) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHypergraph,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace marioh
