// Tests for the deterministic parallel helper, the task-level WorkerPool
// the api::Service runs jobs on, and thread-count invariance of the
// parallelized reconstruction path.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/marioh.hpp"
#include "eval/metrics.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/worker_pool.hpp"

namespace marioh::util {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 0}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    ParallelFor(hits.size(), threads, [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads "
                                   << threads;
    }
  }
}

TEST(ParallelFor, EmptyAndSingleElement) {
  int count = 0;
  ParallelFor(0, 4, [&](size_t) { ++count; });
  EXPECT_EQ(count, 0);
  ParallelFor(1, 4, [&](size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, ResultsMatchSequential) {
  const size_t n = 1000;
  std::vector<double> seq(n), par(n);
  auto work = [](size_t i) {
    return std::sin(static_cast<double>(i)) * std::sqrt(i + 1.0);
  };
  ParallelFor(n, 1, [&](size_t i) { seq[i] = work(i); });
  ParallelFor(n, 4, [&](size_t i) { par[i] = work(i); });
  EXPECT_EQ(seq, par);
}

TEST(ResolveThreads, Basics) {
  EXPECT_EQ(ResolveThreads(3), 3);
  EXPECT_GE(ResolveThreads(0), 1);
}

TEST(WorkerPool, RunsEverySubmittedTaskExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    util::WorkerPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    const size_t n = 100;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h = 0;
    for (size_t i = 0; i < n; ++i) {
      pool.Submit([&hits, i] { hits[i]++; });
    }
    pool.Drain();
    EXPECT_EQ(pool.pending(), 0u);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " threads "
                                   << threads;
    }
  }
}

TEST(WorkerPool, ShutdownDrainsTheQueueFirst) {
  std::atomic<int> done{0};
  {
    util::WorkerPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&done] { done++; });
    }
    pool.Shutdown();
    EXPECT_EQ(done.load(), 50);  // nothing dropped
    // Submitting after shutdown is a discard, not a crash.
    pool.Submit([&done] { done++; });
    pool.Shutdown();  // idempotent
  }  // destructor after explicit Shutdown is a no-op too
  EXPECT_EQ(done.load(), 50);
}

TEST(WorkerPool, TasksMaySubmitTasks) {
  util::WorkerPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &done] {
      pool.Submit([&done] { done++; });
    });
  }
  // Drain waits for the transitively submitted work too.
  pool.Drain();
  EXPECT_EQ(done.load(), 8);
}

TEST(ParallelReconstruction, ThreadCountDoesNotChangeResult) {
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName("hosts"), 5);
  Rng rng(6);
  gen::SourceTargetSplit split =
      gen::SplitHypergraph(data.hypergraph, &rng, 0.5);
  ProjectedGraph g_source = split.source.Project();
  ProjectedGraph g_target = split.target.Project();

  core::MariohOptions sequential;
  sequential.seed = 9;
  sequential.num_threads = 1;
  core::MariohOptions parallel = sequential;
  parallel.num_threads = 4;

  core::Marioh a(sequential), b(parallel);
  a.Train(g_source, split.source);
  b.Train(g_source, split.source);
  Hypergraph ha = a.Reconstruct(g_target);
  Hypergraph hb = b.Reconstruct(g_target);
  EXPECT_EQ(ha.UniqueEdges(), hb.UniqueEdges());
  EXPECT_DOUBLE_EQ(eval::MultiJaccard(ha, hb), 1.0);
}

}  // namespace
}  // namespace marioh::util
