// Tests for the deterministic parallel helper and for thread-count
// invariance of the parallelized reconstruction path.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

#include "core/marioh.hpp"
#include "eval/metrics.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace marioh::util {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 0}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    ParallelFor(hits.size(), threads, [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads "
                                   << threads;
    }
  }
}

TEST(ParallelFor, EmptyAndSingleElement) {
  int count = 0;
  ParallelFor(0, 4, [&](size_t) { ++count; });
  EXPECT_EQ(count, 0);
  ParallelFor(1, 4, [&](size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, ResultsMatchSequential) {
  const size_t n = 1000;
  std::vector<double> seq(n), par(n);
  auto work = [](size_t i) {
    return std::sin(static_cast<double>(i)) * std::sqrt(i + 1.0);
  };
  ParallelFor(n, 1, [&](size_t i) { seq[i] = work(i); });
  ParallelFor(n, 4, [&](size_t i) { par[i] = work(i); });
  EXPECT_EQ(seq, par);
}

TEST(ResolveThreads, Basics) {
  EXPECT_EQ(ResolveThreads(3), 3);
  EXPECT_GE(ResolveThreads(0), 1);
}

TEST(ParallelReconstruction, ThreadCountDoesNotChangeResult) {
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName("hosts"), 5);
  Rng rng(6);
  gen::SourceTargetSplit split =
      gen::SplitHypergraph(data.hypergraph, &rng, 0.5);
  ProjectedGraph g_source = split.source.Project();
  ProjectedGraph g_target = split.target.Project();

  core::MariohOptions sequential;
  sequential.seed = 9;
  sequential.num_threads = 1;
  core::MariohOptions parallel = sequential;
  parallel.num_threads = 4;

  core::Marioh a(sequential), b(parallel);
  a.Train(g_source, split.source);
  b.Train(g_source, split.source);
  Hypergraph ha = a.Reconstruct(g_target);
  Hypergraph hb = b.Reconstruct(g_target);
  EXPECT_EQ(ha.UniqueEdges(), hb.UniqueEdges());
  EXPECT_DOUBLE_EQ(eval::MultiJaccard(ha, hb), 1.0);
}

}  // namespace
}  // namespace marioh::util
