// Tests for the deterministic parallel helper, the task-level WorkerPool
// the api::Service runs jobs on, and thread-count invariance of the
// parallelized reconstruction path.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/marioh.hpp"
#include "eval/metrics.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/worker_pool.hpp"

namespace marioh::util {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 0}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    ParallelFor(hits.size(), threads, [&](size_t i) { hits[i]++; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads "
                                   << threads;
    }
  }
}

TEST(ParallelFor, EmptyAndSingleElement) {
  int count = 0;
  ParallelFor(0, 4, [&](size_t) { ++count; });
  EXPECT_EQ(count, 0);
  ParallelFor(1, 4, [&](size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, ResultsMatchSequential) {
  const size_t n = 1000;
  std::vector<double> seq(n), par(n);
  auto work = [](size_t i) {
    return std::sin(static_cast<double>(i)) * std::sqrt(i + 1.0);
  };
  ParallelFor(n, 1, [&](size_t i) { seq[i] = work(i); });
  ParallelFor(n, 4, [&](size_t i) { par[i] = work(i); });
  EXPECT_EQ(seq, par);
}

TEST(CancelToken, CancelAndDeadlineSetReasonOnce) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_EQ(token.reason(), CancelReason::kNone);

  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.reason(), CancelReason::kCancelled);

  // An explicit Cancel wins over a deadline that trips later.
  token.SetDeadline(0.0);
  EXPECT_EQ(token.reason(), CancelReason::kCancelled);

  CancelToken deadline;
  deadline.SetDeadline(0.0);  // already past
  EXPECT_TRUE(deadline.ShouldStop());
  EXPECT_FALSE(deadline.cancelled());  // the flag is Cancel()'s alone
  EXPECT_EQ(deadline.reason(), CancelReason::kDeadline);

  CancelToken disarmed;
  disarmed.SetDeadline(3600.0);
  EXPECT_FALSE(disarmed.ShouldStop());
  disarmed.SetDeadline(-1.0);  // negative disarms
  EXPECT_FALSE(disarmed.ShouldStop());
  EXPECT_EQ(disarmed.reason(), CancelReason::kNone);

  // The null-token helper never stops.
  EXPECT_FALSE(ShouldStop(nullptr));
  EXPECT_TRUE(ShouldStop(&token));
}

TEST(CancelToken, CheckerLatchesAndNullTokenIsFree) {
  CancelChecker none(nullptr);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(none.ShouldStop());

  CancelToken token;
  CancelChecker checker(&token);
  EXPECT_FALSE(checker.ShouldStop());
  token.Cancel();
  EXPECT_TRUE(checker.ShouldStop());
  // Latches: stays stopped on every later poll.
  EXPECT_TRUE(checker.ShouldStop());
}

TEST(ParallelFor, UntrippedTokenLeavesResultsIdentical) {
  const size_t n = 1000;
  auto work = [](size_t i) {
    return std::sin(static_cast<double>(i)) * std::sqrt(i + 1.0);
  };
  std::vector<double> plain(n);
  ParallelFor(n, 2, [&](size_t i) { plain[i] = work(i); });

  CancelToken token;  // never tripped
  for (int threads : {1, 2, 8}) {
    std::vector<double> gated(n);
    ParallelFor(n, threads, &token, [&](size_t i) { gated[i] = work(i); });
    EXPECT_EQ(gated, plain) << "threads " << threads;
  }
  // A null token is the plain overload.
  std::vector<double> null_token(n);
  ParallelFor(n, 2, nullptr, [&](size_t i) { null_token[i] = work(i); });
  EXPECT_EQ(null_token, plain);
}

TEST(ParallelFor, TrippedTokenStopsEveryRangeEarly) {
  const size_t n = 100000;
  CancelToken token;
  token.Cancel();  // tripped before the loop even starts
  std::atomic<size_t> visited{0};
  ParallelFor(n, 4, &token, [&](size_t) { ++visited; });
  // Each worker range stops within one checker stride of the trip.
  EXPECT_LT(visited.load(), n / 2);
}

TEST(ResolveThreads, Basics) {
  EXPECT_EQ(ResolveThreads(3), 3);
  EXPECT_GE(ResolveThreads(0), 1);
}

TEST(WorkerPool, RunsEverySubmittedTaskExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    util::WorkerPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    const size_t n = 100;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h = 0;
    for (size_t i = 0; i < n; ++i) {
      pool.Submit([&hits, i] { hits[i]++; });
    }
    pool.Drain();
    EXPECT_EQ(pool.pending(), 0u);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i << " threads "
                                   << threads;
    }
  }
}

TEST(WorkerPool, ShutdownDrainsTheQueueFirst) {
  std::atomic<int> done{0};
  {
    util::WorkerPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&done] { done++; });
    }
    pool.Shutdown();
    EXPECT_EQ(done.load(), 50);  // nothing dropped
    // Submitting after shutdown is a discard, not a crash.
    pool.Submit([&done] { done++; });
    pool.Shutdown();  // idempotent
  }  // destructor after explicit Shutdown is a no-op too
  EXPECT_EQ(done.load(), 50);
}

TEST(WorkerPool, TasksMaySubmitTasks) {
  util::WorkerPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &done] {
      pool.Submit([&done] { done++; });
    });
  }
  // Drain waits for the transitively submitted work too.
  pool.Drain();
  EXPECT_EQ(done.load(), 8);
}

// A single worker blocked on a latch, then six tasks queued with mixed
// priorities and clients: when the latch opens, the pool must dispatch
// them in the documented order — priority classes first, round-robin
// across clients within a class, FIFO within a client — independent of
// submission order. Fully deterministic: nothing runs until the latch
// opens, so every task is queued before the first scheduling decision.
TEST(WorkerPool, DispatchOrderIsPriorityThenFairShare) {
  util::WorkerPool pool(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  bool blocker_running = false;
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mutex);
    blocker_running = true;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
  });
  {
    // The blocker must hold the worker before anything else is queued.
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return blocker_running; });
  }

  std::vector<std::string> order;
  auto task = [&mutex, &order](std::string name) {
    return [&mutex, &order, name] {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(name);
    };
  };
  auto submit = [&pool, &task](const std::string& name, int priority,
                               const std::string& client) {
    pool.Submit(task(name), util::TaskOptions{priority, client});
  };
  submit("D", /*priority=*/-1, "d");  // lowest class, submitted first
  submit("A1", 0, "a");
  submit("B1", 0, "b");
  submit("A2", 0, "a");
  submit("A3", 0, "a");
  submit("C", /*priority=*/1, "c");  // highest class, submitted last

  EXPECT_EQ(pool.pending(), 6u);
  EXPECT_EQ(pool.pending(1), 1u);
  EXPECT_EQ(pool.pending(0), 4u);
  EXPECT_EQ(pool.pending(-1), 1u);

  {
    std::lock_guard<std::mutex> lock(mutex);
    open = true;
  }
  cv.notify_all();
  pool.Drain();
  EXPECT_EQ(order,
            (std::vector<std::string>{"C", "A1", "B1", "A2", "A3", "D"}));
}

// The round-robin cursor wraps in ascending client order and resumes
// *after* the client served last, even across queue refills.
TEST(WorkerPool, RoundRobinCursorSurvivesRefills) {
  util::WorkerPool pool(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  bool blocker_running = false;
  auto block = [&] {
    // The blocker lives in a *different* priority bucket so its pops
    // never touch the class-0 round-robin cursor under test.
    pool.Submit(
        [&] {
          std::unique_lock<std::mutex> lock(mutex);
          blocker_running = true;
          cv.notify_all();
          cv.wait(lock, [&] { return open; });
        },
        util::TaskOptions{1, "blocker"});
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return blocker_running; });
  };
  auto release = [&] {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
    pool.Drain();
    std::lock_guard<std::mutex> lock(mutex);
    open = false;
    blocker_running = false;
  };

  std::vector<std::string> order;
  auto submit = [&](const std::string& name, const std::string& client) {
    pool.Submit(
        [&mutex, &order, name] {
          std::lock_guard<std::mutex> lock(mutex);
          order.push_back(name);
        },
        util::TaskOptions{0, client});
  };

  block();
  submit("a1", "a");
  submit("a2", "a");
  submit("b1", "b");
  release();
  // First round: a, b alternate starting from the lowest client id.
  EXPECT_EQ(order, (std::vector<std::string>{"a1", "b1", "a2"}));

  // Refill: the cursor remembers "a" was served last, so "b" goes first
  // now even though "a" submitted first again.
  order.clear();
  block();
  submit("a3", "a");
  submit("b2", "b");
  release();
  EXPECT_EQ(order, (std::vector<std::string>{"b2", "a3"}));
}

TEST(ParallelReconstruction, ThreadCountDoesNotChangeResult) {
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName("hosts"), 5);
  Rng rng(6);
  gen::SourceTargetSplit split =
      gen::SplitHypergraph(data.hypergraph, &rng, 0.5);
  ProjectedGraph g_source = split.source.Project();
  ProjectedGraph g_target = split.target.Project();

  core::MariohOptions sequential;
  sequential.seed = 9;
  sequential.num_threads = 1;
  core::MariohOptions parallel = sequential;
  parallel.num_threads = 4;

  core::Marioh a(sequential), b(parallel);
  a.Train(g_source, split.source);
  b.Train(g_source, split.source);
  Hypergraph ha = a.Reconstruct(g_target);
  Hypergraph hb = b.Reconstruct(g_target);
  EXPECT_EQ(ha.UniqueEdges(), hb.UniqueEdges());
  EXPECT_DOUBLE_EQ(eval::MultiJaccard(ha, hb), 1.0);
}

}  // namespace
}  // namespace marioh::util
