// Integration and cross-module property tests: the full
// generate -> split -> project -> train -> reconstruct -> evaluate
// pipeline, exercised across dataset profiles and methods, checking the
// invariants that the paper's algorithm guarantees by construction.

#include <gtest/gtest.h>

#include "baselines/shyre_unsup.hpp"
#include "core/marioh.hpp"
#include "eval/harness.hpp"
#include "eval/metrics.hpp"
#include "eval/structural.hpp"
#include "gen/profiles.hpp"
#include "io/text_io.hpp"

#include <sstream>

namespace marioh {
namespace {

// Pipeline property: for every fast profile, MARIOH's reconstruction
// re-projects to exactly the input graph (lossless explanation of G), and
// every reconstructed hyperedge is a clique of the input graph.
class PipelineInvariants : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineInvariants, ReconstructionExplainsGraphExactly) {
  eval::PreparedDataset data =
      eval::PrepareDataset(GetParam(), /*multiplicity_reduced=*/true,
                           /*seed=*/11);
  core::Marioh marioh;
  marioh.Train(*data.g_source, *data.source);
  Hypergraph reconstructed = marioh.Reconstruct(*data.g_target);

  // (a) Every reconstructed hyperedge is a clique of the input.
  for (const auto& [e, m] : reconstructed.edges()) {
    (void)m;
    EXPECT_TRUE(data.g_target->IsClique(e));
  }
  // (b) The reconstruction explains the graph exactly: its projection has
  // the same weighted edge multiset.
  ProjectedGraph reprojected = reconstructed.Project();
  EXPECT_EQ(reprojected.TotalWeight(), data.g_target->TotalWeight());
  EXPECT_EQ(reprojected.num_edges(), data.g_target->num_edges());
  // (c) Sanity: accuracy is meaningfully above zero on every profile.
  EXPECT_GT(eval::Jaccard(*data.target, reconstructed), 0.1);
}

INSTANTIATE_TEST_SUITE_P(FastProfiles, PipelineInvariants,
                         ::testing::Values("crime", "directors", "hosts",
                                           "enron"));

// Multiplicity-preserved pipeline: multi-Jaccard is well-defined and the
// total reconstructed multiplicity accounts for the graph's weight.
class MultiplicityPipeline : public ::testing::TestWithParam<const char*> {};

TEST_P(MultiplicityPipeline, MultiJaccardBoundedAndProjectionExact) {
  eval::PreparedDataset data =
      eval::PrepareDataset(GetParam(), /*multiplicity_reduced=*/false,
                           /*seed=*/13);
  core::Marioh marioh;
  marioh.Train(*data.g_source, *data.source);
  Hypergraph reconstructed = marioh.Reconstruct(*data.g_target);
  double mj = eval::MultiJaccard(*data.target, reconstructed);
  EXPECT_GE(mj, 0.0);
  EXPECT_LE(mj, 1.0);
  EXPECT_EQ(reconstructed.Project().TotalWeight(),
            data.g_target->TotalWeight());
}

INSTANTIATE_TEST_SUITE_P(FastProfiles, MultiplicityPipeline,
                         ::testing::Values("crime", "hosts", "enron"));

TEST(Integration, MariohDominatesUnsupervisedPeelingOnHeavyOverlap) {
  // The paper's central comparison: supervised multiplicity-aware search
  // beats the unsupervised peeling baseline on the hard email-style
  // profile.
  eval::AccuracyOptions options;
  options.num_seeds = 2;
  eval::AccuracyResult marioh = eval::RunAccuracy("MARIOH", "enron",
                                                  options);
  eval::AccuracyResult unsup = eval::RunAccuracy("SHyRe-Unsup", "enron",
                                                 options);
  EXPECT_GT(marioh.mean, unsup.mean);
}

TEST(Integration, FilteringImprovesSparseProfiles) {
  // MARIOH vs MARIOH-F on a near-disjoint profile: filtering can only
  // help (it extracts provably-true pairs before the classifier runs).
  eval::AccuracyOptions options;
  options.num_seeds = 3;
  eval::AccuracyResult full = eval::RunAccuracy("MARIOH", "crime", options);
  eval::AccuracyResult nofilter =
      eval::RunAccuracy("MARIOH-F", "crime", options);
  EXPECT_GE(full.mean + 1e-9, nofilter.mean * 0.95)
      << "filtering should not materially hurt sparse profiles";
}

TEST(Integration, TransferAcrossCoauthorshipDomains) {
  // DBLP-trained MARIOH reconstructs a MAG-style hypergraph well
  // (Table V's headline).
  eval::AccuracyOptions options;
  options.num_seeds = 1;
  eval::AccuracyResult transfer =
      eval::RunTransfer("MARIOH", "dblp", "mag_history", options);
  EXPECT_GT(transfer.mean, 60.0);
}

TEST(Integration, SemiSupervisionDegradesGracefully) {
  eval::AccuracyOptions full_opts;
  full_opts.num_seeds = 2;
  eval::AccuracyOptions semi_opts = full_opts;
  semi_opts.marioh_base.classifier.supervision_fraction = 0.1;
  eval::AccuracyResult full = eval::RunAccuracy("MARIOH", "hosts",
                                                full_opts);
  eval::AccuracyResult semi = eval::RunAccuracy("MARIOH", "hosts",
                                                semi_opts);
  // 10% supervision must still land in the same ballpark (paper: within a
  // few points of full supervision), certainly above half of it.
  EXPECT_GT(semi.mean, 0.5 * full.mean);
}

TEST(Integration, SerializedPipelineMatchesInMemory) {
  // Write the split to text, read it back, reconstruct, compare with the
  // in-memory path (the CLI code path).
  eval::PreparedDataset data =
      eval::PrepareDataset("crime", true, 17);
  std::stringstream hyperedges, graph;
  io::WriteHypergraph(*data.source, hyperedges);
  io::WriteProjectedGraph(*data.g_target, graph);
  Hypergraph source2 = io::ReadHypergraph(hyperedges);
  ProjectedGraph g2 = io::ReadProjectedGraph(graph);

  core::MariohOptions options;
  options.seed = 5;
  core::Marioh a(options), b(options);
  a.Train(*data.g_source, *data.source);
  // Projections of the same hypergraph are identical regardless of source.
  b.Train(source2.Project(), source2);
  Hypergraph ra = a.Reconstruct(*data.g_target);
  Hypergraph rb = b.Reconstruct(g2);
  EXPECT_EQ(ra.UniqueEdges(), rb.UniqueEdges());
}

TEST(Integration, StructuralErrorTracksJaccard) {
  // A better reconstruction (MARIOH) must have no-worse average
  // structural preservation error than a crude one (shattering into
  // pairs) on the same dataset.
  eval::PreparedDataset data = eval::PrepareDataset("hosts", true, 19);
  core::Marioh marioh;
  marioh.Train(*data.g_source, *data.source);
  Hypergraph good = marioh.Reconstruct(*data.g_target);
  Hypergraph pairs(data.g_target->num_nodes());
  for (const auto& e : data.g_target->Edges()) {
    pairs.AddEdge({e.u, e.v}, e.weight);
  }
  double err_good =
      eval::CompareStructure(*data.target, good, 21).AverageError();
  double err_pairs =
      eval::CompareStructure(*data.target, pairs, 21).AverageError();
  EXPECT_LE(err_good, err_pairs);
}

TEST(Integration, HarnessOotFlagsSlowMethods) {
  // With an absurdly small budget every method is flagged OOT after the
  // first seed.
  eval::AccuracyOptions options;
  options.num_seeds = 3;
  options.time_budget_seconds = 0.0;
  eval::AccuracyResult r = eval::RunAccuracy("MaxClique", "crime", options);
  EXPECT_TRUE(r.out_of_time);
  EXPECT_EQ(r.seeds, 1);  // stopped after the first seed
}

}  // namespace
}  // namespace marioh
