// Tests for the src/obs observability subsystem: log-bucketed histogram
// boundaries and merging, lock-free concurrent updates, lazy instrument
// registration, pull-model collection hooks, trace-ring eviction and
// span parent/child links, the two exposition formats (Prometheus text
// vs JSON snapshot rendering identical numbers), and the guarantee that
// a disabled registry changes nothing about the reconstruction pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/session.hpp"
#include "eval/harness.hpp"
#include "hypergraph/hypergraph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace marioh::obs {
namespace {

// The enabled flag is process-wide; every test that flips it must
// restore the default so suites sharing the binary stay independent.
struct EnabledGuard {
  explicit EnabledGuard(bool on) { SetEnabled(on); }
  ~EnabledGuard() { SetEnabled(true); }
};

TEST(Histogram, BucketBoundsAreExactPowersOfTwoTimesOneMicro) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1e-6);
  for (size_t i = 1; i < Histogram::kBucketCount; ++i) {
    // Exact equality on purpose: the bounds are built by doubling, and
    // doubling a double is exact, so no tolerance is needed (or wanted —
    // a log/pow-based implementation would fail this).
    EXPECT_EQ(Histogram::BucketUpperBound(i),
              2.0 * Histogram::BucketUpperBound(i - 1))
        << "bucket " << i;
  }
}

TEST(Histogram, BucketIndexUsesInclusiveUpperBounds) {
  // Prometheus `le` semantics: a value equal to a bound belongs to that
  // bucket; the next representable value above it belongs to the next.
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    double bound = Histogram::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketIndex(bound), i);
    EXPECT_EQ(Histogram::BucketIndex(
                  std::nextafter(bound, std::numeric_limits<double>::max())),
              i + 1);
  }
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1e308), Histogram::kBucketCount);
}

TEST(Histogram, ObserveRecordsCountSumMaxAndBuckets) {
  Histogram h;
  h.Observe(1.5e-6);  // bucket 1 (le 2e-6)
  h.Observe(1.5e-6);
  h.Observe(0.5);     // within finite range
  h.Observe(1e9);     // +Inf overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  EXPECT_NEAR(h.sum(), 1e9 + 0.5 + 3e-6, 1.0);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(0.5)), 1u);
  EXPECT_EQ(h.bucket(Histogram::kBucketCount), 1u);
}

TEST(Histogram, MergeFromAddsCountsAndTakesPairwiseMax) {
  Histogram a;
  a.Observe(2e-6);
  a.Observe(1.0);
  Histogram b;
  b.Observe(0.5);
  b.MergeFrom(a);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_NEAR(b.sum(), 1.5 + 2e-6, 1e-12);
  EXPECT_DOUBLE_EQ(b.max(), 1.0);
  EXPECT_EQ(b.bucket(Histogram::BucketIndex(2e-6)), 1u);
  EXPECT_EQ(b.bucket(Histogram::BucketIndex(0.5)), 1u);
  EXPECT_EQ(b.bucket(Histogram::BucketIndex(1.0)), 1u);
  // The merge source is untouched.
  EXPECT_EQ(a.count(), 2u);
}

TEST(Registry, ConcurrentUpdatesFromManyThreadsLoseNothing) {
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("test_total");
  Gauge* gauge = registry.GetGauge("test_gauge");
  Histogram* histogram = registry.GetHistogram("test_seconds");
  constexpr int kThreads = 8;
  constexpr int kIterations = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        counter->Increment();
        gauge->Add(1.0);
        histogram->Observe(1e-5);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  constexpr uint64_t kTotal = uint64_t{kThreads} * kIterations;
  EXPECT_EQ(counter->value(), kTotal);
  EXPECT_DOUBLE_EQ(gauge->value(), static_cast<double>(kTotal));
  EXPECT_EQ(histogram->count(), kTotal);
  EXPECT_EQ(histogram->bucket(Histogram::BucketIndex(1e-5)), kTotal);
}

TEST(Registry, InstrumentsAreLazyAndPointerStable) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("x_total");
  EXPECT_EQ(registry.GetCounter("x_total"), a);
  // A different label set is a different time series.
  Counter* labeled = registry.GetCounter("x_total", "stage=\"train\"");
  EXPECT_NE(labeled, a);
  EXPECT_EQ(registry.GetCounter("x_total", "stage=\"train\""), labeled);
}

TEST(Registry, CollectionHooksRunAtCollectAndStopAfterRemoval) {
  MetricRegistry registry;
  int runs = 0;
  // The hook itself calls GetCounter — the registry must run hooks
  // outside its instrument-map lock or this deadlocks.
  uint64_t id = registry.AddCollectionHook([&] {
    ++runs;
    registry.GetCounter("hooked_total")->Set(static_cast<uint64_t>(runs));
  });
  std::vector<MetricSnapshot> collected = registry.Collect();
  EXPECT_EQ(runs, 1);
  bool found = false;
  for (const MetricSnapshot& m : collected) {
    if (m.name == "hooked_total") {
      found = true;
      EXPECT_EQ(m.counter_value, 1u);
    }
  }
  EXPECT_TRUE(found);
  registry.RemoveCollectionHook(id);
  registry.Collect();
  EXPECT_EQ(runs, 1);
}

TEST(Registry, CollectRendersCumulativeBucketsEndingAtCount) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("lat_seconds");
  h->Observe(1e-6);
  h->Observe(3e-6);
  h->Observe(1e9);  // overflow
  std::vector<MetricSnapshot> collected = registry.Collect();
  ASSERT_EQ(collected.size(), 1u);
  const MetricSnapshot& m = collected[0];
  EXPECT_EQ(m.kind, MetricSnapshot::Kind::kHistogram);
  ASSERT_EQ(m.buckets.size(), Histogram::kBucketCount + 1);
  // Cumulative and monotone, with the +Inf bucket equal to the count.
  uint64_t previous = 0;
  for (const MetricSnapshot::Bucket& bucket : m.buckets) {
    EXPECT_GE(bucket.cumulative, previous);
    previous = bucket.cumulative;
  }
  EXPECT_FALSE(m.buckets.back().le.has_value());
  EXPECT_EQ(m.buckets.back().cumulative, m.count);
  EXPECT_EQ(m.buckets.front().cumulative, 1u);  // the 1e-6 observation
  EXPECT_EQ(m.count, 3u);
}

TEST(FormatMetricValueTest, IntegersRenderPlainAndFloatsRoundTrip) {
  EXPECT_EQ(FormatMetricValue(0.0), "0");
  EXPECT_EQ(FormatMetricValue(42.0), "42");
  EXPECT_EQ(FormatMetricValue(1e15), "1000000000000000");
  for (double value : {0.1, 1e-6, 1.0 / 3.0, -2.5, 6.103515625e-05}) {
    std::string text = FormatMetricValue(value);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
  }
}

// Parses Prometheus text exposition into {series signature -> value
// string}, skipping comment lines. The signature is the full
// `name{labels}` (or bare name) token.
std::map<std::string, std::string> ParsePrometheus(const std::string& text) {
  std::map<std::string, std::string> series;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    series[line.substr(0, space)] = line.substr(space + 1);
  }
  return series;
}

TEST(Exposition, PrometheusTextMatchesCollectExactly) {
  MetricRegistry registry;
  registry.GetCounter("jobs_total")->Add(7);
  registry.GetGauge("depth", "priority=\"batch\"")->Set(2.5);
  Histogram* h = registry.GetHistogram("wait_seconds");
  h->Observe(1.5e-6);
  h->Observe(0.25);

  std::map<std::string, std::string> series =
      ParsePrometheus(registry.PrometheusText());
  EXPECT_EQ(series.at("jobs_total"), "7");
  EXPECT_EQ(series.at("depth{priority=\"batch\"}"), FormatMetricValue(2.5));
  EXPECT_EQ(series.at("wait_seconds_count"), "2");
  EXPECT_EQ(series.at("wait_seconds_sum"), FormatMetricValue(0.25 + 1.5e-6));
  EXPECT_EQ(series.at("wait_seconds_max"), FormatMetricValue(0.25));
  EXPECT_EQ(series.at("wait_seconds_bucket{le=\"+Inf\"}"), "2");
  // Every cumulative bucket from Collect() appears verbatim in the text.
  std::vector<MetricSnapshot> collected = registry.Collect();
  for (const MetricSnapshot& m : collected) {
    if (m.kind != MetricSnapshot::Kind::kHistogram) continue;
    for (const MetricSnapshot::Bucket& bucket : m.buckets) {
      std::string le = bucket.le.has_value()
                           ? FormatMetricValue(*bucket.le)
                           : std::string("+Inf");
      EXPECT_EQ(series.at(m.name + "_bucket{le=\"" + le + "\"}"),
                std::to_string(bucket.cumulative));
    }
  }
}

TEST(Exposition, JsonSnapshotRendersTheSameNumbersAsText) {
  MetricRegistry registry;
  registry.GetCounter("jobs_total")->Add(11);
  registry.GetGauge("depth")->Set(0.1);
  Histogram* h = registry.GetHistogram("wait_seconds");
  h->Observe(0.125);  // exactly representable: sum is exact
  h->Observe(0.375);

  std::string json = registry.SnapshotJson();
  // Both formats share FormatMetricValue, so equivalence is textual.
  EXPECT_NE(json.find("\"name\":\"jobs_total\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"value\":11"), std::string::npos) << json;
  EXPECT_NE(json.find("\"value\":" + FormatMetricValue(0.1)),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\":" + FormatMetricValue(0.5)),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"max\":" + FormatMetricValue(0.375)),
            std::string::npos)
      << json;
}

TEST(Exposition, GlobalRegistryPublishesProcessMemoryGauges) {
  std::optional<MemorySample> sample = SampleProcessMemory();
  if (!sample.has_value()) GTEST_SKIP() << "/proc/self/status unavailable";
  EXPECT_GT(sample->rss_bytes, 0u);
  EXPECT_GE(sample->peak_rss_bytes, sample->rss_bytes);

  std::map<std::string, std::string> series =
      ParsePrometheus(MetricRegistry::Global().PrometheusText());
  EXPECT_EQ(series.count("marioh_process_rss_bytes"), 1u);
  EXPECT_EQ(series.count("marioh_process_peak_rss_bytes"), 1u);
  EXPECT_GT(std::strtod(series.at("marioh_process_rss_bytes").c_str(),
                        nullptr),
            0.0);
}

TEST(Trace, RingEvictsOldestFirstAtCapacity) {
  TraceRing ring(4);
  for (uint64_t i = 1; i <= 7; ++i) {
    SpanRecord span;
    span.id = i;
    span.name = std::to_string(i);
    ring.Record(std::move(span));
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  std::vector<SpanRecord> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].id, i + 4);  // 1..3 evicted, oldest (4) first
  }
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
}

TEST(Trace, NestedSpansLinkChildToParent) {
  TraceRing ring(16);
  uint64_t parent_id = 0;
  uint64_t child_id = 0;
  {
    TraceSpan parent("job", "outer", &ring);
    parent_id = parent.id();
    EXPECT_NE(parent_id, 0u);
    {
      TraceSpan child("stage", "inner", &ring);
      child_id = child.id();
    }
  }
  std::vector<SpanRecord> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // The child closes (and records) first.
  EXPECT_EQ(spans[0].id, child_id);
  EXPECT_EQ(spans[0].parent_id, parent_id);
  EXPECT_EQ(spans[0].name, "stage");
  EXPECT_EQ(spans[1].id, parent_id);
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_GE(spans[1].duration_seconds, spans[0].duration_seconds);
  EXPECT_GE(spans[0].start_seconds, spans[1].start_seconds);
}

TEST(Trace, SiblingsShareTheParentRestoredBetweenThem) {
  TraceRing ring(16);
  uint64_t parent_id = 0;
  {
    TraceSpan parent("job", "", &ring);
    parent_id = parent.id();
    { TraceSpan first("stage", "a", &ring); }
    { TraceSpan second("stage", "b", &ring); }
  }
  std::vector<SpanRecord> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].parent_id, parent_id);
  EXPECT_EQ(spans[1].parent_id, parent_id);
  EXPECT_EQ(spans[2].id, parent_id);
}

TEST(Disabled, EventTimeInstrumentsRecordNothing) {
  EnabledGuard guard(false);
  Histogram h;
  h.Observe(0.5);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  TraceRing ring(4);
  {
    TraceSpan span("job", "", &ring);
    EXPECT_EQ(span.id(), 0u);  // inert
  }
  EXPECT_EQ(ring.size(), 0u);
  // Counters and gauges still publish: collection hooks must keep
  // working so exposition stays truthful while event recording is off.
  MetricRegistry registry;
  registry.GetCounter("still_counts_total")->Increment();
  EXPECT_EQ(registry.GetCounter("still_counts_total")->value(), 1u);
}

// A reconstruction must be bit-identical with observability on and off:
// the obs hooks sit at stage/job granularity, never inside kernels, so
// disabling them cannot perturb results (and, by the same token, they
// cost the kernels nothing).
TEST(Disabled, ReconstructionIsBitIdenticalEitherWay) {
  auto run = [] {
    eval::PreparedDataset data = eval::PrepareDataset(
        "crime", /*multiplicity_reduced=*/true, /*seed=*/1);
    api::SessionOptions options;
    options.method = "MARIOH";
    api::Session session;
    EXPECT_TRUE(session.Configure(options).ok());
    EXPECT_TRUE(session.Train(*data.g_source, *data.source).ok());
    EXPECT_TRUE(session.Reconstruct(*data.g_target).ok());
    return std::make_pair(*session.reconstruction(),
                          session.Evaluate(*data.target));
  };
  EnabledGuard restore(true);  // re-enables even if an ASSERT bails out
  SetEnabled(true);
  auto enabled = run();
  SetEnabled(false);
  auto disabled = run();
  SetEnabled(true);
  ASSERT_TRUE(enabled.second.ok());
  ASSERT_TRUE(disabled.second.ok());
  EXPECT_EQ(enabled.first.UniqueEdges(), disabled.first.UniqueEdges());
  for (const NodeSet& edge : enabled.first.UniqueEdges()) {
    EXPECT_EQ(enabled.first.Multiplicity(edge),
              disabled.first.Multiplicity(edge));
  }
  // Exact float equality on purpose: same inputs, same arithmetic.
  EXPECT_EQ(enabled.second->jaccard, disabled.second->jaccard);
}

}  // namespace
}  // namespace marioh::obs
