// marioh_served: the socketed serving daemon — a net::TcpServer on one
// net::EventLoop thread multiplexing many concurrent clients onto the
// shared api::Service worker pool. Each connection speaks the same
// line protocol as marioh_serve (src/api/README.md) and schedules as its
// own fair-share client lane.
//
//   marioh_served [--port P] [--workers N] [--max-connections N]
//                 [--cache-bytes N] [--job-ttl SECONDS]
//                 [--max-queued N] [--max-inflight N]
//                 [--max-output-bytes N] [--stats-json PATH]
//                 [--metrics-json PATH]
//                 [--stall-timeout SECONDS] [--shed-batch-above N]
//                 [--journal-dir PATH] [--fsync always|never]
//                 [--allow-failpoint-admin] [--force-poll]
//
//   --port P             bind 127.0.0.1:P; 0 (default) picks a free port
//   --workers N          Service worker threads (0 = all cores)
//   --max-connections N  reject accepts past N concurrent connections
//   --cache-bytes N      DatasetCache LRU budget (0 = unbounded)
//   --job-ttl SECONDS    auto-retire terminal jobs after this long
//                        (negative = keep forever)
//   --max-queued N       admission cap on queued jobs (0 = unbounded)
//   --max-inflight N     per-client in-flight job cap (0 = unbounded)
//   --max-output-bytes N per-connection write-buffer cap before a slow
//                        reader is disconnected
//   --stats-json PATH    write a final stats snapshot here on shutdown
//                        (the legacy key set, rendered from the metric
//                        registry — same values as the `stats` verb)
//   --metrics-json PATH  write the full observability snapshot here on
//                        shutdown: every counter/gauge/histogram plus
//                        recent trace spans (obs::SnapshotJson)
//   --stall-timeout S    watchdog: cancel a running job whose heartbeat
//                        is silent for S seconds (negative = off)
//   --shed-batch-above N reject batch-priority submits while >= N jobs
//                        are queued (0 = no shedding)
//   --journal-dir PATH   durability: write-ahead journal every accepted
//                        request into PATH and, at startup, re-admit the
//                        jobs a previous life accepted but never finished
//                        (the banner reports recovered=N). The dataset
//                        manifest PATH/datasets.manifest re-loads the
//                        datasets first so recovered jobs resolve.
//   --fsync always|never journal fsync policy (default always: an
//                        accepted job survives power loss)
//   --allow-failpoint-admin
//                        let clients drive the `failpoints` verb (chaos
//                        testing only — never on a shared server)
//   --force-poll         use the portable poll(2) event-loop backend
//                        (MARIOH_NET_FORCE_POLL=1 does the same)
//
// The first stdout line is `ok marioh_served port=<P> ...` so a launcher
// binding port 0 can read the real port back. SIGINT/SIGTERM stop the
// event loop; shutdown drains through the Service destructor (queued jobs
// cancelled, running ones preempted mid-kernel) and exits 0.

#include <sys/stat.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "api/dataset_cache.hpp"
#include "api/service.hpp"
#include "net/event_loop.hpp"
#include "net/line_protocol.hpp"
#include "net/tcp_server.hpp"
#include "obs/metrics.hpp"
#include "util/parse.hpp"

namespace {

marioh::net::EventLoop* g_loop = nullptr;

void HandleSignal(int) {
  if (g_loop != nullptr) g_loop->Stop();  // async-signal-safe
}

int FlagError(const std::string& flag, const char* expected) {
  std::cerr << "error: " << flag << " needs " << expected << "\n";
  return 1;
}

// Temp file + rename(2): the file visible under `path` is always a
// complete snapshot — a death mid-write can never leave truncated
// JSON for a soak script to choke on.
void WriteFileAtomic(const std::string& path, const std::string& body) {
  std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::trunc);
  out << body;
  out.flush();
  if (!out) {
    std::cerr << "error: writing snapshot to " << tmp << " failed\n";
    return;
  }
  out.close();
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::cerr << "error: renaming " << tmp << " to " << path << " failed\n";
  }
}

// The legacy stats keys, rendered from the same registry collection the
// `stats` verb uses — the file and the wire cannot drift. Every value is
// already a JSON-safe number string.
void WriteStatsJson(const std::string& path) {
  std::vector<std::pair<std::string, std::string>> fields =
      marioh::net::LegacyStatsFields();
  std::string body = "{\n";
  for (size_t i = 0; i < fields.size(); ++i) {
    body += "  \"" + fields[i].first + "\": " + fields[i].second;
    body += i + 1 < fields.size() ? ",\n" : "\n";
  }
  body += "}\n";
  WriteFileAtomic(path, body);
}

}  // namespace

int main(int argc, char** argv) {
  marioh::api::ServiceOptions service_options;
  marioh::net::TcpServerOptions net_options;
  marioh::net::EventLoopOptions loop_options;
  size_t cache_bytes = 0;
  std::string stats_json;
  std::string metrics_json;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value = i + 1 < argc ? argv[i + 1] : "";
    if (arg == "--port" && i + 1 < argc) {
      std::optional<uint64_t> port = marioh::util::ParseUint64(value);
      if (!port.has_value() || *port > 65535) {
        return FlagError(arg, "a port number (0 = ephemeral)");
      }
      net_options.port = static_cast<uint16_t>(*port);
      ++i;
    } else if (arg == "--workers" && i + 1 < argc) {
      std::optional<int> workers = marioh::util::ParseNonNegativeInt(value);
      if (!workers.has_value()) {
        return FlagError(arg, "a non-negative integer (0 = all cores)");
      }
      service_options.num_workers = *workers;
      ++i;
    } else if (arg == "--max-connections" && i + 1 < argc) {
      std::optional<uint64_t> cap = marioh::util::ParseUint64(value);
      if (!cap.has_value()) {
        return FlagError(arg, "a non-negative integer (0 = unlimited)");
      }
      net_options.max_connections = *cap;
      ++i;
    } else if (arg == "--cache-bytes" && i + 1 < argc) {
      std::optional<uint64_t> bytes = marioh::util::ParseUint64(value);
      if (!bytes.has_value()) {
        return FlagError(arg, "a byte budget (0 = unbounded)");
      }
      cache_bytes = *bytes;
      ++i;
    } else if (arg == "--job-ttl" && i + 1 < argc) {
      std::optional<double> ttl = marioh::util::ParseDouble(value);
      if (!ttl.has_value()) {
        return FlagError(arg, "seconds (negative = keep forever)");
      }
      service_options.job_ttl_seconds = *ttl;
      ++i;
    } else if (arg == "--max-queued" && i + 1 < argc) {
      std::optional<uint64_t> cap = marioh::util::ParseUint64(value);
      if (!cap.has_value()) {
        return FlagError(arg, "a non-negative integer (0 = unbounded)");
      }
      service_options.max_queued_jobs = *cap;
      ++i;
    } else if (arg == "--max-inflight" && i + 1 < argc) {
      std::optional<uint64_t> cap = marioh::util::ParseUint64(value);
      if (!cap.has_value()) {
        return FlagError(arg, "a non-negative integer (0 = unbounded)");
      }
      service_options.max_inflight_per_client = *cap;
      ++i;
    } else if (arg == "--max-output-bytes" && i + 1 < argc) {
      std::optional<uint64_t> cap = marioh::util::ParseUint64(value);
      if (!cap.has_value()) {
        return FlagError(arg, "a byte cap (0 = unbounded)");
      }
      net_options.max_output_bytes = *cap;
      ++i;
    } else if (arg == "--stats-json" && i + 1 < argc) {
      stats_json = value;
      ++i;
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_json = value;
      ++i;
    } else if (arg == "--stall-timeout" && i + 1 < argc) {
      std::optional<double> timeout = marioh::util::ParseDouble(value);
      if (!timeout.has_value()) {
        return FlagError(arg, "seconds (negative = watchdog off)");
      }
      service_options.stall_timeout_seconds = *timeout;
      ++i;
    } else if (arg == "--shed-batch-above" && i + 1 < argc) {
      std::optional<uint64_t> cap = marioh::util::ParseUint64(value);
      if (!cap.has_value()) {
        return FlagError(arg, "a queue depth (0 = no shedding)");
      }
      service_options.shed_batch_above_queued = *cap;
      ++i;
    } else if (arg == "--journal-dir" && i + 1 < argc) {
      service_options.journal_dir = value;
      ++i;
    } else if (arg == "--fsync" && i + 1 < argc) {
      if (!marioh::util::ParseJournalFsync(
              value, &service_options.journal_fsync)) {
        return FlagError(arg, "'always' or 'never'");
      }
      ++i;
    } else if (arg == "--allow-failpoint-admin") {
      net_options.allow_failpoint_admin = true;
    } else if (arg == "--force-poll") {
      loop_options.force_poll = true;
    } else {
      std::cerr << "error: unknown flag '" << arg
                << "' (see the header comment of marioh_served.cpp)\n";
      return 1;
    }
  }

  auto cache = std::make_shared<marioh::api::DatasetCache>(cache_bytes);
  if (!service_options.journal_dir.empty()) {
    // Datasets first, jobs second: the manifest restore must finish
    // before Service replays the journal, or re-admitted jobs would not
    // resolve their handles. A partially failed restore is a warning,
    // not a refusal — the affected jobs fail with a precise status,
    // everything else recovers. The directory must exist before the
    // manifest writes into it (Journal::Open creates it too, but only
    // once the Service is constructed — after this block).
    ::mkdir(service_options.journal_dir.c_str(), 0755);
    std::string manifest =
        service_options.journal_dir + "/datasets.manifest";
    marioh::api::Status restored = cache->RestoreFromManifest(
        manifest,
        [&cache](const std::string& basename, const std::string& profile,
                 uint64_t seed) {
          return marioh::net::GenerateDataset(cache.get(), basename,
                                              profile, seed);
        });
    if (!restored.ok()) {
      std::cerr << "warning: " << restored.message() << "\n";
    }
    marioh::api::Status manifest_on = cache->EnableManifest(manifest);
    if (!manifest_on.ok()) {
      std::cerr << "error: " << manifest_on.message() << "\n";
      return 1;
    }
  }
  marioh::api::Service service(cache, service_options);
  if (!service.startup_status().ok()) {
    // A journal that cannot be opened/replayed means the durability the
    // operator asked for is not there — refuse to serve rather than
    // silently drop the promise.
    std::cerr << "error: " << service.startup_status().message() << "\n";
    return 1;
  }
  marioh::net::EventLoop loop(loop_options);
  marioh::net::TcpServer server(&loop, cache.get(), &service, net_options);

  marioh::api::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "error: " << started.message() << "\n";
    return 1;
  }

  g_loop = &loop;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);  // broken sockets surface as write errors

  std::cout << "ok marioh_served port=" << server.port() << " workers="
            << (service_options.num_workers == 0
                    ? "auto"
                    : std::to_string(service_options.num_workers))
            << " max_connections=" << net_options.max_connections
            << " cache_bytes=" << cache_bytes
            << " job_ttl=" << service_options.job_ttl_seconds
            << " backend=" << loop.backend();
  if (!service_options.journal_dir.empty()) {
    std::cout << " journal=" << service_options.journal_dir
              << " recovered=" << service.stats().jobs_recovered;
  }
  std::cout << std::endl;

  loop.Run();

  if (!stats_json.empty()) {
    WriteStatsJson(stats_json);
  }
  if (!metrics_json.empty()) {
    WriteFileAtomic(
        metrics_json,
        marioh::obs::MetricRegistry::Global().SnapshotJson() + "\n");
  }
  std::cout << "ok bye " << server.StatsFields() << std::endl;
  return 0;
}
