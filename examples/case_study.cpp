// Fig. 2 case study: an ego sub-hypergraph (a researcher and ten
// co-authors) is projected to a weighted graph; MARIOH restores it exactly
// while SHyRe-Count recovers only part of it. This mirrors the paper's
// Jure Leskovec example with a synthetic ego network.

#include <iostream>

#include "baselines/shyre.hpp"
#include "core/marioh.hpp"
#include "eval/metrics.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/rng.hpp"

namespace {

void PrintHypergraph(const std::string& title,
                     const marioh::Hypergraph& h) {
  std::cout << title << "\n";
  for (const marioh::NodeSet& e : h.UniqueEdges()) {
    std::cout << "  {";
    for (size_t i = 0; i < e.size(); ++i) {
      std::cout << e[i] << (i + 1 < e.size() ? ", " : "");
    }
    std::cout << "} x" << h.Multiplicity(e) << "\n";
  }
}

}  // namespace

int main() {
  using namespace marioh;

  // Ego sub-hypergraph: node 0 is the prolific author; hyperedges are
  // papers with disjoint-ish collaborator circles, one repeated (the
  // "multiplicity 2" paper of Fig. 2), and some collaborator-only papers.
  Hypergraph ego;
  ego.AddEdge({0, 1, 2}, 1);      // paper with collaborators 1, 2
  ego.AddEdge({0, 3}, 2);         // two papers with collaborator 3
  ego.AddEdge({0, 4, 5, 6}, 1);   // four-author paper
  ego.AddEdge({0, 7}, 1);
  ego.AddEdge({4, 5}, 1);         // collaborator-only paper
  ego.AddEdge({8, 9, 10}, 1);     // a paper not involving the ego
  ego.AddEdge({0, 8, 9, 10}, 1);  // and its follow-up with the ego

  // Training data: a larger hypergraph from the same domain (earlier
  // years of the co-authorship network).
  gen::GeneratedDataset history =
      gen::Generate(gen::ProfileByName("dblp"), 5);
  util::Rng rng(6);
  gen::SourceTargetSplit split =
      gen::SplitHypergraph(history.hypergraph, &rng, 0.5);
  ProjectedGraph g_train = split.source.Project();

  ProjectedGraph g_ego = ego.Project();
  std::cout << "Input: projected ego graph with " << g_ego.num_edges()
            << " weighted edges\n\n";
  PrintHypergraph("Ground-truth ego hypergraph:", ego);

  core::Marioh marioh;
  marioh.Train(g_train, split.source);
  Hypergraph by_marioh = marioh.Reconstruct(g_ego);
  std::cout << "\n";
  PrintHypergraph("Reconstructed by MARIOH:", by_marioh);
  std::cout << "MARIOH:      Jaccard = "
            << eval::Jaccard(ego, by_marioh)
            << ", multi-Jaccard = " << eval::MultiJaccard(ego, by_marioh)
            << "\n\n";

  baselines::Shyre::Options options;
  options.seed = 7;
  baselines::Shyre shyre(options);
  shyre.Train(g_train, split.source);
  Hypergraph by_shyre = shyre.Reconstruct(g_ego);
  PrintHypergraph("Reconstructed by SHyRe-Count:", by_shyre);
  std::cout << "SHyRe-Count: Jaccard = " << eval::Jaccard(ego, by_shyre)
            << ", multi-Jaccard = " << eval::MultiJaccard(ego, by_shyre)
            << "\n";
  return 0;
}
