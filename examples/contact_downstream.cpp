// Contact-network downstream tasks (Table VII/VIII scenario): a school
// contact hypergraph was simplified to pairwise contacts. We reconstruct
// it with MARIOH and show that spectral node clustering and node
// classification on the reconstruction recover most of the gap between
// the projected graph and the (normally unavailable) original hypergraph.

#include <iostream>

#include "core/marioh.hpp"
#include "eval/classification.hpp"
#include "eval/clustering.hpp"
#include "eval/harness.hpp"
#include "util/table.hpp"

int main() {
  using namespace marioh;

  eval::PreparedDataset data =
      eval::PrepareDataset("pschool", /*multiplicity_reduced=*/true,
                           /*seed=*/7);
  std::cout << "Contact network (P.School-like profile): "
            << data.target->num_nodes() << " students, "
            << data.target->num_unique_edges()
            << " unique contact groups, " << data.num_classes
            << " classes\n\n";

  core::Marioh marioh;
  marioh.Train(*data.g_source, *data.source);
  Hypergraph reconstructed = marioh.Reconstruct(*data.g_target);
  std::cout << "MARIOH reconstructed " << reconstructed.num_unique_edges()
            << " contact groups\n\n";

  const size_t embed_dim = 16;
  la::Matrix graph_embedding =
      eval::GraphSpectralEmbedding(*data.g_target, embed_dim);
  la::Matrix recon_embedding =
      eval::HypergraphSpectralEmbedding(reconstructed, embed_dim);
  la::Matrix truth_embedding =
      eval::HypergraphSpectralEmbedding(*data.target, embed_dim);

  util::TextTable table("Downstream task quality by input representation");
  table.SetHeader({"Input", "Clustering NMI", "Classification micro-F1"});
  auto evaluate = [&](const std::string& name,
                      const la::Matrix& embedding) {
    double nmi = eval::SpectralClusteringNmi(embedding, data.labels,
                                             data.num_classes, 11);
    eval::F1Scores f1 = eval::NodeClassification(
        embedding, data.labels, data.num_classes, 0.7, 13);
    table.AddRow({name, util::TextTable::Num(nmi, 4),
                  util::TextTable::Num(f1.micro, 4)});
  };
  evaluate("Projected graph G", graph_embedding);
  evaluate("H^ by MARIOH", recon_embedding);
  evaluate("Original hypergraph H", truth_embedding);
  std::cout << table.Render();
  std::cout << "\nHigher-order structure recovered by reconstruction "
               "narrows the gap to the original hypergraph.\n";
  return 0;
}
