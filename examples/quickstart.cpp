// Quickstart: build a tiny co-authorship-style hypergraph, project it,
// train MARIOH on one half through the public `api::Session` façade,
// reconstruct the other half, and print the accuracy — the whole public
// API in ~60 lines.

#include <iostream>

#include "api/session.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/rng.hpp"

int main() {
  using namespace marioh;

  // 1. A hypergraph: sets of co-authors per paper (with repeats).
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName("crime"), /*seed=*/1);
  std::cout << "Hypergraph: " << data.hypergraph.num_nodes() << " nodes, "
            << data.hypergraph.num_unique_edges() << " unique hyperedges ("
            << data.hypergraph.num_total_edges() << " total)\n";

  // 2. Split into a source half (supervision) and a target half (hidden
  //    ground truth), then project both to weighted pairwise graphs.
  util::Rng rng(7);
  gen::SourceTargetSplit split =
      gen::SplitHypergraph(data.hypergraph, &rng, 0.5);
  ProjectedGraph g_source = split.source.Project();
  ProjectedGraph g_target = split.target.Project();
  std::cout << "Target projected graph: " << g_target.num_edges()
            << " weighted edges (avg multiplicity "
            << g_target.AverageWeight() << ")\n";

  // 3. Configure a session (paper defaults: theta=0.9, r=20, a=1/20),
  //    train MARIOH on the source pair, and reconstruct the target.
  //    Every failure mode arrives as a Status, never an abort.
  api::SessionOptions options;
  options.method = "MARIOH";
  api::Session session;
  if (api::Status s = session.Configure(options); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  if (api::Status s = session.Train(g_source, split.source); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  if (api::Status s = session.Reconstruct(g_target); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  // 4. Score against the hidden target hypergraph.
  auto scores = session.Evaluate(split.target);
  if (!scores.ok()) {
    std::cerr << scores.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Reconstructed " << scores->reconstructed_unique_edges
            << " unique hyperedges\n";
  std::cout << "Jaccard similarity      = " << scores->jaccard << "\n";
  std::cout << "multi-Jaccard similarity = " << scores->multi_jaccard
            << "\n";
  return 0;
}
