// Co-authorship scenario (the paper's motivating domain): a DBLP-like
// collaboration hypergraph is only available as a weighted co-authorship
// graph ("how many papers did u and v write together?"). We reconstruct
// the papers (author sets) with MARIOH, compare against the strongest
// baselines, and show the storage saving of the hypergraph representation
// over the projected graph.

#include <iostream>

#include "baselines/shyre.hpp"
#include "baselines/shyre_unsup.hpp"
#include "core/marioh.hpp"
#include "eval/metrics.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

/// Storage proxy: a graph stores one (u, v, w) record per edge; a
/// hypergraph stores each hyperedge's node list once plus a count.
size_t GraphStorageCells(const marioh::ProjectedGraph& g) {
  return g.num_edges() * 3;
}

size_t HypergraphStorageCells(const marioh::Hypergraph& h) {
  size_t cells = 0;
  for (const auto& [e, m] : h.edges()) {
    (void)m;
    cells += e.size() + 1;
  }
  return cells;
}

}  // namespace

int main() {
  using namespace marioh;

  // The "published dataset": only the projected co-authorship graph of the
  // 2017 slice; the 2015 slice (with full paper lists) is available for
  // supervision — exactly the paper's experimental setup.
  gen::GeneratedDataset dblp = gen::Generate(gen::ProfileByName("dblp"), 7);
  util::Rng rng(8);
  gen::SourceTargetSplit split =
      gen::SplitHypergraph(dblp.hypergraph.MultiplicityReduced(), &rng, 0.5);
  ProjectedGraph g_2015 = split.source.Project();
  ProjectedGraph g_2017 = split.target.Project();

  std::cout << "Co-authorship reconstruction (DBLP-like profile)\n"
            << "  authors:            " << dblp.hypergraph.num_nodes()
            << "\n  papers (target):    " << split.target.num_unique_edges()
            << "\n  projected edges:    " << g_2017.num_edges() << "\n\n";

  util::TextTable table("Reconstruction quality by method");
  table.SetHeader({"Method", "Jaccard", "multi-Jaccard", "#hyperedges"});

  // SHyRe-Unsup (multiplicity-aware unsupervised baseline).
  {
    baselines::ShyreUnsup method;
    Hypergraph rec = method.Reconstruct(g_2017);
    table.AddRow({method.Name(),
                  util::TextTable::Num(eval::Jaccard(split.target, rec), 3),
                  util::TextTable::Num(eval::MultiJaccard(split.target, rec),
                                       3),
                  std::to_string(rec.num_unique_edges())});
  }
  // SHyRe-Count (supervised structural baseline).
  {
    baselines::Shyre::Options options;
    options.seed = 9;
    baselines::Shyre method(options);
    method.Train(g_2015, split.source);
    Hypergraph rec = method.Reconstruct(g_2017);
    table.AddRow({method.Name(),
                  util::TextTable::Num(eval::Jaccard(split.target, rec), 3),
                  util::TextTable::Num(eval::MultiJaccard(split.target, rec),
                                       3),
                  std::to_string(rec.num_unique_edges())});
  }
  // MARIOH.
  Hypergraph marioh_rec(0);
  {
    core::Marioh marioh;
    marioh.Train(g_2015, split.source);
    marioh_rec = marioh.Reconstruct(g_2017);
    table.AddRow(
        {"MARIOH",
         util::TextTable::Num(eval::Jaccard(split.target, marioh_rec), 3),
         util::TextTable::Num(eval::MultiJaccard(split.target, marioh_rec),
                              3),
         std::to_string(marioh_rec.num_unique_edges())});
  }
  std::cout << table.Render() << "\n";

  std::cout << "Storage (record cells): projected graph "
            << GraphStorageCells(g_2017) << " vs reconstructed hypergraph "
            << HypergraphStorageCells(marioh_rec) << " ("
            << util::TextTable::Num(
                   100.0 * (1.0 - static_cast<double>(HypergraphStorageCells(
                                      marioh_rec)) /
                                      static_cast<double>(GraphStorageCells(
                                          g_2017))),
                   1)
            << "% saved)\n";
  return 0;
}
