// marioh_serve: a line-oriented serving loop over the api::Service stack —
// the front end that runs many reconstructions concurrently over shared
// in-memory datasets. It speaks the net::LineProtocol request codec on
// stdin/stdout (one request per line, one `ok ...` or `error ...` response
// line each), so it works interactively, under a pipe, and in the ctest
// smoke test alike. The TCP front end (examples/marioh_served) speaks the
// same codec over sockets.
//
//   marioh_serve [--workers N] [--journal-dir PATH] [--fsync always|never]
//
// With --journal-dir, every accepted request is write-ahead journaled
// into PATH and jobs a previous life accepted but never finished are
// re-admitted at startup (after the PATH/datasets.manifest restore) —
// the same durability contract as marioh_served.
//
// Protocol (see src/api/README.md for the full reference):
//
//   load hypergraph <name> <path>   load a .hg file (+ projection) once
//   load graph <name> <path>        load a .eg edge list once
//   gen <name> <profile> <seed>     generate + split a synthetic profile:
//                                   <name>.train / .target / .truth
//   datasets                        list resident dataset names
//   methods                         list registered method names
//   submit key=value ...            submit a job; keys: method= train=
//                                   target= truth= seed= budget=
//                                   deadline= priority= client= kthreads=
//                                   retries= backoff= plus any
//                                   session/method override (threads=,
//                                   theta_init=, ...). Responds `ok job N`.
//   poll <id>                       non-blocking job state
//   wait <id>                       block until the job finishes
//   cancel <id>                     cancel a queued job, or preempt a
//                                   running one mid-kernel
//   forget <id>                     retire a finished job (frees its
//                                   result; keeps memory bounded)
//   stats                           service counters (one key=value line)
//   metrics [json]                  full observability snapshot from the
//                                   metric registry: Prometheus text
//                                   framed as `ok metrics lines=N` + N
//                                   lines, or one `ok metrics-json {...}`
//                                   line with `metrics json`
//   failpoints [spec|off]           inspect / reconfigure fault injection
//                                   (always enabled here: whoever drives
//                                   stdin already owns the process)
//   quit                            exit 0 (EOF does the same)
//
// Errors never kill the loop: a bad request gets one `error CODE: message`
// line and the server keeps reading. Unknown datasets, unknown methods,
// malformed files, bad overrides all arrive as api::Status values.

#include <sys/stat.h>

#include <iostream>
#include <memory>
#include <string>

#include "api/dataset_cache.hpp"
#include "api/service.hpp"
#include "net/line_protocol.hpp"

int main(int argc, char** argv) {
  using marioh::api::DatasetCache;
  using marioh::api::Service;

  marioh::api::ServiceOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      try {
        options.num_workers = std::stoi(argv[++i]);
        if (options.num_workers < 0) throw std::invalid_argument(arg);
      } catch (const std::exception&) {
        std::cerr << "error: --workers needs a non-negative integer "
                     "(0 = all cores)\n";
        return 1;
      }
    } else if (arg == "--journal-dir" && i + 1 < argc) {
      options.journal_dir = argv[++i];
    } else if (arg == "--fsync" && i + 1 < argc) {
      if (!marioh::util::ParseJournalFsync(argv[++i],
                                           &options.journal_fsync)) {
        std::cerr << "error: --fsync needs 'always' or 'never'\n";
        return 1;
      }
    } else {
      std::cerr << "error: unknown flag '" << arg
                << "' (usage: marioh_serve [--workers N] "
                   "[--journal-dir PATH] [--fsync always|never])\n";
      return 1;
    }
  }

  auto cache = std::make_shared<DatasetCache>();
  if (!options.journal_dir.empty()) {
    // Datasets before jobs: recovered requests must resolve their
    // handles (see marioh_served for the same sequence). The directory
    // must exist before the manifest writes into it.
    ::mkdir(options.journal_dir.c_str(), 0755);
    std::string manifest = options.journal_dir + "/datasets.manifest";
    marioh::api::Status restored = cache->RestoreFromManifest(
        manifest, [&cache](const std::string& basename,
                           const std::string& profile, uint64_t seed) {
          return marioh::net::GenerateDataset(cache.get(), basename,
                                              profile, seed);
        });
    if (!restored.ok()) {
      std::cerr << "warning: " << restored.message() << "\n";
    }
    marioh::api::Status manifest_on = cache->EnableManifest(manifest);
    if (!manifest_on.ok()) {
      std::cerr << "error: " << manifest_on.message() << "\n";
      return 1;
    }
  }
  Service service(cache, options);
  if (!service.startup_status().ok()) {
    std::cerr << "error: " << service.startup_status().message() << "\n";
    return 1;
  }
  marioh::net::LineProtocol protocol(cache.get(), &service);
  // stdin is a local, single-operator surface: whoever can type here can
  // also set MARIOH_FAILPOINTS, so gating the admin verb would add
  // ceremony without adding safety (unlike the TCP server, where it is
  // opt-in per --allow-failpoint-admin).
  protocol.set_allow_failpoint_admin(true);
  std::cout << "ok marioh_serve workers="
            << (options.num_workers == 0 ? "auto"
                                         : std::to_string(
                                               options.num_workers))
            << "\n";

  std::string line;
  while (std::getline(std::cin, line)) {
    marioh::net::LineProtocol::Result result = protocol.Handle(line);
    if (result.wait_for.has_value()) {
      // The protocol defers `wait`; a single-client stdin loop can
      // simply block in the service until the job is terminal.
      marioh::api::StatusOr<marioh::api::JobSnapshot> job =
          service.Wait(*result.wait_for);
      std::cout << (job.ok()
                        ? protocol.FormatJob(*job)
                        : marioh::net::LineProtocol::FormatError(
                              job.status()));
      continue;
    }
    std::cout << result.response;
    if (result.quit) return 0;
  }
  // EOF behaves like quit: the Service destructor cancels queued jobs
  // and preempts running ones at their next mid-kernel preemption point
  // before joining.
  std::cout << "ok bye\n";
  return 0;
}
