// marioh_serve: a line-oriented serving loop over the api::Service stack —
// the front end that runs many reconstructions concurrently over shared
// in-memory datasets. It speaks a plain-text request protocol on
// stdin/stdout (one request per line, one `ok ...` or `error ...` response
// line each), so it works interactively, under a pipe, and in the ctest
// smoke test alike.
//
//   marioh_serve [--workers N]
//
// Protocol (see src/api/README.md for the full reference):
//
//   load hypergraph <name> <path>   load a .hg file (+ projection) once
//   load graph <name> <path>        load a .eg edge list once
//   gen <name> <profile> <seed>     generate + split a synthetic profile:
//                                   <name>.train / .target / .truth
//   datasets                        list resident dataset names
//   methods                         list registered method names
//   submit key=value ...            submit a job; keys: method= train=
//                                   target= truth= seed= budget=
//                                   deadline= priority= client= kthreads=
//                                   plus any session/method override
//                                   (threads=, theta_init=, ...).
//                                   Responds `ok job N`.
//   poll <id>                       non-blocking job state
//   wait <id>                       block until the job finishes
//   cancel <id>                     cancel a queued job, or preempt a
//                                   running one mid-kernel
//   forget <id>                     retire a finished job (frees its
//                                   result; keeps memory bounded)
//   stats                           service counters
//   quit                            exit 0 (EOF does the same)
//
// Errors never kill the loop: a bad request gets one `error CODE: message`
// line and the server keeps reading. Unknown datasets, unknown methods,
// malformed files, bad overrides all arrive as api::Status values.

#include <cstdint>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/dataset_cache.hpp"
#include "api/registry.hpp"
#include "api/request.hpp"
#include "api/service.hpp"
#include "eval/harness.hpp"
#include "io/text_io.hpp"

namespace {

using marioh::api::DatasetCache;
using marioh::api::DatasetHandle;
using marioh::api::JobId;
using marioh::api::JobSnapshot;
using marioh::api::ReconstructRequest;
using marioh::api::Service;
using marioh::api::Status;
using marioh::api::StatusOr;

void PrintError(const Status& status) {
  std::cout << "error " << marioh::api::StatusCodeName(status.code())
            << ": " << status.message() << "\n";
}

void PrintDataset(const DatasetHandle& dataset) {
  std::cout << "ok dataset " << dataset.name;
  if (dataset.has_hypergraph()) {
    std::cout << " hypergraph_nodes=" << dataset.hypergraph->num_nodes()
              << " hyperedges=" << dataset.hypergraph->num_unique_edges();
  }
  if (dataset.has_graph()) {
    std::cout << " graph_nodes=" << dataset.graph->num_nodes()
              << " graph_edges=" << dataset.graph->num_edges();
  }
  std::cout << "\n";
}

void PrintJob(const JobSnapshot& job) {
  std::cout << "ok job " << job.id << " state="
            << marioh::api::JobStateName(job.state) << " method="
            << job.method << " target=" << job.target_dataset;
  if (job.terminal()) {
    if (!job.status.ok()) {
      std::cout << " status="
                << marioh::api::StatusCodeName(job.status.code());
    }
    if (job.budget_overrun) std::cout << " budget_overrun=1";
    if (job.cancel_latency_seconds >= 0.0) {
      std::cout << " cancel_latency=" << job.cancel_latency_seconds;
    }
    if (job.reconstruction != nullptr) {
      std::cout << " unique_edges=" << job.reconstruction->num_unique_edges()
                << " total_edges=" << job.reconstruction->num_total_edges();
    }
    if (job.evaluation.has_value()) {
      std::cout << " jaccard=" << job.evaluation->jaccard
                << " multi_jaccard=" << job.evaluation->multi_jaccard;
    }
    auto train = job.stage_stats.find("train");
    auto reconstruct = job.stage_stats.find("reconstruct");
    double seconds =
        (train != job.stage_stats.end() ? train->second : 0.0) +
        (reconstruct != job.stage_stats.end() ? reconstruct->second : 0.0);
    std::cout << " seconds=" << seconds;
    if (!job.status.ok()) std::cout << " message=\"" << job.status.message()
                                    << "\"";
  }
  std::cout << "\n";
}

/// `load <hypergraph|graph> <name> <path>`
void HandleLoad(DatasetCache& cache, std::istringstream& args) {
  std::string kind, name, path;
  args >> kind >> name >> path;
  if (kind.empty() || name.empty() || path.empty()) {
    PrintError(Status::InvalidArgument(
        "usage: load <hypergraph|graph> <name> <path>"));
    return;
  }
  StatusOr<DatasetHandle> dataset =
      kind == "hypergraph" ? cache.LoadHypergraphFile(name, path)
      : kind == "graph"    ? cache.LoadProjectedGraphFile(name, path)
                           : Status::InvalidArgument(
                                 "unknown dataset kind '" + kind +
                                 "' (expected hypergraph or graph)");
  if (!dataset.ok()) {
    PrintError(dataset.status());
    return;
  }
  PrintDataset(*dataset);
}

/// `gen <name> <profile> <seed>`: the multi-user benchmark workflow
/// without files — prepares a dataset exactly as the evaluation harness
/// does (generate, multiplicity-reduce, split, project) and shares the
/// halves through the cache as <name>.train / <name>.target /
/// <name>.truth.
void HandleGen(DatasetCache& cache, std::istringstream& args) {
  std::string name, profile_name, seed_token;
  uint64_t seed = 1;
  args >> name >> profile_name >> seed_token;
  if (name.empty() || profile_name.empty()) {
    PrintError(
        Status::InvalidArgument("usage: gen <name> <profile> [seed]"));
    return;
  }
  if (!seed_token.empty()) {
    try {
      size_t pos = 0;
      if (seed_token.find('-') != std::string::npos) {
        throw std::invalid_argument(seed_token);
      }
      seed = std::stoull(seed_token, &pos);
      if (pos != seed_token.size()) throw std::invalid_argument(seed_token);
    } catch (const std::exception&) {
      PrintError(Status::InvalidArgument("bad seed '" + seed_token + "'"));
      return;
    }
  }
  // All three names must be free up front so a conflict cannot leave a
  // partially inserted triple behind.
  for (const char* suffix : {".train", ".target", ".truth"}) {
    if (cache.Contains(name + suffix)) {
      PrintError(Status::AlreadyExists("dataset '" + name + suffix +
                                       "' is already loaded"));
      return;
    }
  }
  StatusOr<marioh::eval::PreparedDataset> data =
      marioh::eval::TryPrepareDataset(profile_name,
                                      /*multiplicity_reduced=*/true, seed);
  if (!data.ok()) {
    PrintError(data.status());
    return;
  }
  // The names were pre-checked and the loop is single-threaded, so the
  // inserts cannot conflict.
  StatusOr<DatasetHandle> train =
      cache.Insert(name + ".train", data->source, data->g_source);
  StatusOr<DatasetHandle> target =
      cache.Insert(name + ".target", nullptr, data->g_target);
  StatusOr<DatasetHandle> truth =
      cache.Insert(name + ".truth", data->target, nullptr);
  for (const auto* inserted : {&train, &target, &truth}) {
    if (!inserted->ok()) {
      PrintError(inserted->status());
      return;
    }
  }
  std::cout << "ok generated " << name << ".train " << name << ".target "
            << name << ".truth\n";
}

/// `submit key=value ...`
void HandleSubmit(Service& service, std::istringstream& args) {
  ReconstructRequest request;
  std::string token;
  std::vector<std::string> typed_keys_seen;
  while (args >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      PrintError(Status::InvalidArgument("expected key=value, got '" +
                                         token + "'"));
      return;
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    bool typed = key == "method" || key == "train" || key == "target" ||
                 key == "truth" || key == "seed" || key == "budget" ||
                 key == "deadline" || key == "priority" ||
                 key == "client" || key == "kthreads";
    if (typed) {
      // Mirror the session layer's duplicate hardening: a repeated typed
      // key is a typo, not a silent overwrite.
      for (const std::string& seen : typed_keys_seen) {
        if (seen == key) {
          PrintError(Status::InvalidArgument("duplicate option '" + key +
                                             "'"));
          return;
        }
      }
      typed_keys_seen.push_back(key);
    }
    try {
      size_t pos = 0;
      if (key == "method") {
        request.method = value;
      } else if (key == "train") {
        request.train_dataset = value;
      } else if (key == "target") {
        request.target_dataset = value;
      } else if (key == "truth") {
        request.ground_truth_dataset = value;
      } else if (key == "seed") {
        if (value.find('-') != std::string::npos) {
          throw std::invalid_argument(value);
        }
        request.seed = std::stoull(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
      } else if (key == "budget") {
        request.time_budget_seconds = std::stod(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
      } else if (key == "deadline") {
        request.deadline_seconds = std::stod(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
      } else if (key == "priority") {
        if (!marioh::api::ParsePriority(value, &request.priority)) {
          PrintError(Status::InvalidArgument(
              "bad priority '" + value +
              "' (expected batch, normal, or interactive)"));
          return;
        }
      } else if (key == "client") {
        request.client_id = value;
      } else if (key == "kthreads") {
        request.kernel_threads = std::stoi(value, &pos);
        if (pos != value.size() || request.kernel_threads < 0) {
          throw std::invalid_argument(value);
        }
      } else {
        request.overrides.emplace_back(std::move(key), std::move(value));
      }
    } catch (const std::exception&) {
      PrintError(Status::InvalidArgument("bad value '" + value +
                                         "' for option '" + key + "'"));
      return;
    }
  }
  StatusOr<JobId> id = service.Submit(request);
  if (!id.ok()) {
    PrintError(id.status());
    return;
  }
  std::cout << "ok job " << *id << "\n";
}

/// Parses the single job-id argument of poll/wait/cancel.
bool ParseJobId(std::istringstream& args, const char* verb, JobId* id) {
  std::string token;
  args >> token;
  try {
    size_t pos = 0;
    *id = std::stoull(token, &pos);
    if (token.empty() || pos != token.size()) {
      throw std::invalid_argument(token);
    }
  } catch (const std::exception&) {
    PrintError(Status::InvalidArgument(std::string("usage: ") + verb +
                                       " <job-id>"));
    return false;
  }
  return true;
}

void PrintStats(const Service& service) {
  marioh::api::ServiceStats stats = service.stats();
  std::cout << "ok stats accepted=" << stats.accepted
            << " queued=" << stats.queued << " running=" << stats.running
            << " done=" << stats.done << " failed=" << stats.failed
            << " cancelled=" << stats.cancelled
            << " deadline_exceeded=" << stats.deadline_exceeded
            << " budget_overruns=" << stats.budget_overruns
            << " preempted=" << stats.preempted
            << " queued_interactive=" << stats.queued_interactive
            << " queued_normal=" << stats.queued_normal
            << " queued_batch=" << stats.queued_batch;
  if (stats.cancel_latency_count > 0) {
    std::cout << " cancel_latency_mean="
              << stats.cancel_latency_total_seconds /
                     static_cast<double>(stats.cancel_latency_count)
              << " cancel_latency_max=" << stats.cancel_latency_max_seconds;
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  marioh::api::ServiceOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      try {
        options.num_workers = std::stoi(argv[++i]);
        if (options.num_workers < 0) throw std::invalid_argument(arg);
      } catch (const std::exception&) {
        std::cerr << "error: --workers needs a non-negative integer "
                     "(0 = all cores)\n";
        return 1;
      }
    } else {
      std::cerr << "error: unknown flag '" << arg
                << "' (usage: marioh_serve [--workers N])\n";
      return 1;
    }
  }

  auto cache = std::make_shared<DatasetCache>();
  Service service(cache, options);
  std::cout << "ok marioh_serve workers="
            << (options.num_workers == 0 ? "auto"
                                         : std::to_string(
                                               options.num_workers))
            << "\n";

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream args(line);
    std::string verb;
    args >> verb;
    if (verb.empty() || verb[0] == '#') continue;  // blank / comment
    if (verb == "quit") {
      std::cout << "ok bye\n";
      return 0;
    }
    if (verb == "load") {
      HandleLoad(*cache, args);
    } else if (verb == "gen") {
      HandleGen(*cache, args);
    } else if (verb == "datasets") {
      std::cout << "ok datasets";
      for (const std::string& name : cache->Names()) {
        std::cout << " " << name;
      }
      std::cout << "\n";
    } else if (verb == "methods") {
      std::cout << "ok methods";
      for (const std::string& name :
           marioh::api::MethodRegistry::Global().Names()) {
        std::cout << " " << name;
      }
      std::cout << "\n";
    } else if (verb == "submit") {
      HandleSubmit(service, args);
    } else if (verb == "poll" || verb == "wait") {
      JobId id = 0;
      if (!ParseJobId(args, verb.c_str(), &id)) continue;
      StatusOr<JobSnapshot> job =
          verb == "poll" ? service.Poll(id) : service.Wait(id);
      if (!job.ok()) {
        PrintError(job.status());
        continue;
      }
      PrintJob(*job);
    } else if (verb == "cancel" || verb == "forget") {
      JobId id = 0;
      if (!ParseJobId(args, verb.c_str(), &id)) continue;
      Status status = verb == "cancel" ? service.Cancel(id)
                                       : service.Forget(id);
      if (!status.ok()) {
        PrintError(status);
        continue;
      }
      std::cout << "ok " << verb << " " << id << "\n";
    } else if (verb == "stats") {
      PrintStats(service);
    } else {
      PrintError(Status::InvalidArgument(
          "unknown request '" + verb +
          "' (load gen datasets methods submit poll wait cancel forget "
          "stats quit)"));
    }
  }
  // EOF behaves like quit: the Service destructor cancels queued jobs
  // and preempts running ones at their next mid-kernel preemption point
  // before joining.
  std::cout << "ok bye\n";
  return 0;
}
