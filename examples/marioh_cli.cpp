// Command-line reconstruction tool: the workflow a downstream user runs on
// their own files.
//
//   marioh_cli train.hg target.eg out.hg [theta_init r alpha]
//
// where `train.hg` is a source hypergraph (text format, see
// io/text_io.hpp), `target.eg` a weighted edge list of the projected graph
// to reconstruct, and `out.hg` the output hypergraph path. When invoked
// without arguments, runs a self-contained demo on generated files in the
// current directory.

#include <iostream>
#include <string>

#include "core/marioh.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "io/text_io.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

int Run(const std::string& train_path, const std::string& target_path,
        const std::string& out_path, const marioh::core::MariohOptions&
        options) {
  using namespace marioh;
  util::Timer timer;
  Hypergraph source = io::ReadHypergraphFile(train_path);
  ProjectedGraph g_target = io::ReadProjectedGraphFile(target_path);
  std::cout << "loaded source hypergraph: " << source.num_nodes()
            << " nodes, " << source.num_unique_edges()
            << " unique hyperedges\n"
            << "loaded target graph: " << g_target.num_nodes()
            << " nodes, " << g_target.num_edges() << " edges\n";

  core::Marioh marioh(options);
  marioh.Train(source.Project(), source);
  Hypergraph reconstructed = marioh.Reconstruct(g_target);
  io::WriteHypergraphFile(reconstructed, out_path);

  std::cout << "reconstructed " << reconstructed.num_unique_edges()
            << " unique hyperedges ("
            << reconstructed.num_total_edges() << " total) -> " << out_path
            << "\n"
            << "stages: train "
            << marioh.stage_timer().Get("train") << "s, filtering "
            << marioh.stage_timer().Get("filtering") << "s, bidirectional "
            << marioh.stage_timer().Get("bidirectional") << "s (total "
            << timer.Seconds() << "s)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  marioh::core::MariohOptions options;
  if (argc >= 4) {
    if (argc >= 5) options.theta_init = std::stod(argv[4]);
    if (argc >= 6) options.r_percent = std::stod(argv[5]);
    if (argc >= 7) options.alpha = std::stod(argv[6]);
    return Run(argv[1], argv[2], argv[3], options);
  }

  // Demo mode: generate a dataset, write the files a user would have, then
  // run the same path as the file-based CLI.
  std::cout << "demo mode (pass: train.hg target.eg out.hg "
               "[theta r alpha] to run on your files)\n";
  marioh::gen::GeneratedDataset data =
      marioh::gen::Generate(marioh::gen::ProfileByName("hosts"), 11);
  marioh::util::Rng rng(12);
  marioh::gen::SourceTargetSplit split =
      marioh::gen::SplitHypergraph(data.hypergraph, &rng, 0.5);
  marioh::io::WriteHypergraphFile(split.source, "demo_train.hg");
  marioh::io::WriteProjectedGraphFile(split.target.Project(),
                                      "demo_target.eg");
  return Run("demo_train.hg", "demo_target.eg", "demo_out.hg", options);
}
