// Command-line reconstruction tool: the workflow a downstream user runs on
// their own files, built entirely on the public `api::Session` façade.
//
//   marioh_cli [flags] train.hg target.eg out.hg [theta_init r alpha]
//
// where `train.hg` is a source hypergraph (text format, see
// io/text_io.hpp), `target.eg` a weighted edge list of the projected graph
// to reconstruct, and `out.hg` the output hypergraph path. Flags:
//
//   --method NAME     reconstruction method (default MARIOH); see
//                     --list-methods for the roster
//   --set key=value   session or method option override (repeatable),
//                     e.g. --set theta_init=0.8 --set seed=7
//                     --set threads=8 (0 = all cores) parallelizes the
//                     reconstruction kernels of the MARIOH-family
//                     methods (baselines ignore it); output is
//                     identical for any thread count
//   --budget SECONDS  wall-clock budget over train+reconstruct; an
//                     overrunning run still writes its output but is
//                     reported as out of time with exit code 1
//   --list-methods    print the registered methods and exit
//
// Errors (unknown method, unreadable/malformed files, bad options) are
// reported on stderr with exit code 1 — never an abort. When invoked
// without arguments, runs a self-contained demo on generated files in the
// current directory.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/dataset_cache.hpp"
#include "api/registry.hpp"
#include "api/session.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "io/text_io.hpp"
#include "util/rng.hpp"

namespace {

int Fail(const marioh::api::Status& status) {
  std::cerr << "error: " << status.message() << "\n";
  return 1;
}

int ListMethods() {
  std::cout << "registered methods:\n";
  for (const marioh::api::MethodInfo& info :
       marioh::api::MethodRegistry::Global().Methods()) {
    std::cout << "  " << info.name
              << (info.supervised ? "  [supervised]" : "  [unsupervised]")
              << (info.multiplicity_aware ? " [multiplicity-aware]" : "")
              << "\n      " << info.summary << "\n";
  }
  return 0;
}

int Run(const std::string& train_path, const std::string& target_path,
        const std::string& out_path,
        marioh::api::SessionOptions options) {
  using marioh::api::Session;
  using marioh::api::Status;

  // Route the file loads through a DatasetCache: a single CLI run loads
  // each path once, and the same wiring scales to N sessions sharing one
  // process-wide cache (see api/dataset_cache.hpp and marioh_serve).
  options.cache = std::make_shared<marioh::api::DatasetCache>();
  Session session;
  if (Status status = session.Configure(std::move(options)); !status.ok()) {
    return Fail(status);
  }

  if (Status status = session.TrainFromFile(train_path); !status.ok()) {
    return Fail(status);
  }
  if (Status status = session.ReconstructFromFile(target_path);
      !status.ok()) {
    return Fail(status);
  }
  if (Status status = session.WriteReconstruction(out_path);
      !status.ok()) {
    return Fail(status);
  }

  const marioh::Hypergraph& reconstructed = *session.reconstruction();
  std::cout << "method: " << session.method_info().name << "\n"
            << "reconstructed " << reconstructed.num_unique_edges()
            << " unique hyperedges (" << reconstructed.num_total_edges()
            << " total) -> " << out_path << "\n"
            << "stages: train " << session.stage_timer().Get("train")
            << "s, reconstruct "
            << session.stage_timer().Get("reconstruct") << "s (total "
            << session.elapsed_seconds() << "s)\n";
  if (session.deadline_exceeded()) {
    // The output was still written (the paper's OOT accounting keeps the
    // overrunning run), but the run is reported as out of time.
    std::cerr << "error: out of time: train+reconstruct exceeded the "
                 "budget\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  marioh::api::SessionOptions options;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " requires an argument\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list-methods") return ListMethods();
    if (arg == "--method") {
      const char* value = next("--method");
      if (value == nullptr) return 1;
      options.method = value;
    } else if (arg == "--set") {
      const char* value = next("--set");
      if (value == nullptr) return 1;
      if (marioh::api::Status status =
              marioh::api::ApplySessionOverride(&options, value);
          !status.ok()) {
        return Fail(status);
      }
    } else if (arg == "--budget") {
      const char* value = next("--budget");
      if (value == nullptr) return 1;
      if (marioh::api::Status status = marioh::api::ApplySessionOverride(
              &options, std::string("time_budget_seconds=") + value);
          !status.ok()) {
        return Fail(status);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      return 1;
    } else {
      positional.push_back(arg);
    }
  }

  if (positional.size() >= 3) {
    // Backward-compatible positional knobs: [theta_init r alpha].
    try {
      if (positional.size() >= 4)
        options.marioh.theta_init = std::stod(positional[3]);
      if (positional.size() >= 5)
        options.marioh.r_percent = std::stod(positional[4]);
      if (positional.size() >= 6)
        options.marioh.alpha = std::stod(positional[5]);
    } catch (const std::exception&) {
      std::cerr << "error: theta/r/alpha must be numbers\n";
      return 1;
    }
    return Run(positional[0], positional[1], positional[2],
               std::move(options));
  }
  if (!positional.empty()) {
    std::cerr << "usage: marioh_cli [flags] train.hg target.eg out.hg "
                 "[theta r alpha]\n       marioh_cli --list-methods\n";
    return 1;
  }

  // Demo mode: generate a dataset, write the files a user would have, then
  // run the same path as the file-based CLI.
  std::cout << "demo mode (pass: train.hg target.eg out.hg "
               "[theta r alpha] to run on your files)\n";
  marioh::gen::GeneratedDataset data =
      marioh::gen::Generate(marioh::gen::ProfileByName("hosts"), 11);
  marioh::util::Rng rng(12);
  marioh::gen::SourceTargetSplit split =
      marioh::gen::SplitHypergraph(data.hypergraph, &rng, 0.5);
  if (marioh::api::Status status = marioh::io::TryWriteHypergraphFile(
          split.source, "demo_train.hg");
      !status.ok()) {
    return Fail(status);
  }
  if (marioh::api::Status status = marioh::io::TryWriteProjectedGraphFile(
          split.target.Project(), "demo_target.eg");
      !status.ok()) {
    return Fail(status);
  }
  return Run("demo_train.hg", "demo_target.eg", "demo_out.hg",
             std::move(options));
}
