// Email-network scenario: multiplicity-preserved reconstruction of an
// Enron-like email hypergraph (recipient sets recur across threads), with
// a per-property structural-preservation report — the paper's Table IV
// protocol on a single dataset, exercised through the public API.

#include <iostream>

#include "core/marioh.hpp"
#include "eval/metrics.hpp"
#include "eval/structural.hpp"
#include "gen/profiles.hpp"
#include "gen/split.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace marioh;

  // Enron-like: heavy hyperedge multiplicity (recurring recipient sets).
  gen::GeneratedDataset data =
      gen::Generate(gen::ProfileByName("enron"), 21);
  std::cout << "Email network (Enron-like profile): "
            << data.hypergraph.num_nodes() << " accounts, "
            << data.hypergraph.num_unique_edges()
            << " unique recipient sets, average multiplicity "
            << util::TextTable::Num(data.hypergraph.AverageMultiplicity())
            << "\n\n";

  // Multiplicity-preserved setting: do NOT reduce hyperedge multiplicity.
  util::Rng rng(22);
  gen::SourceTargetSplit split =
      gen::SplitHypergraph(data.hypergraph, &rng, 0.5);

  core::MariohOptions options;
  options.num_threads = 0;  // use all cores for clique scoring
  core::Marioh marioh(options);
  marioh.Train(split.source.Project(), split.source);
  Hypergraph reconstructed = marioh.Reconstruct(split.target.Project());

  std::cout << "multi-Jaccard similarity: "
            << util::TextTable::Num(
                   eval::MultiJaccard(split.target, reconstructed), 3)
            << "  (Jaccard "
            << util::TextTable::Num(
                   eval::Jaccard(split.target, reconstructed), 3)
            << ")\n\n";

  // Structural preservation, property by property.
  eval::StructuralReport report =
      eval::CompareStructure(split.target, reconstructed, 23);
  util::TextTable table(
      "Structural preservation (normalized diff / KS; lower is better)");
  table.SetHeader({"Property", "Error"});
  for (const auto& [name, err] : report.scalar_errors) {
    table.AddRow({name, util::TextTable::Num(err, 4)});
  }
  for (const auto& [name, err] : report.distributional_errors) {
    table.AddRow({name, util::TextTable::Num(err, 4)});
  }
  table.AddRow({"Average (Overall)",
                util::TextTable::Num(report.AverageError(), 4)});
  std::cout << table.Render();
  return 0;
}
